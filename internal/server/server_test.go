package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"graphflow"
)

var (
	dbOnce sync.Once
	testDB *graphflow.DB
)

// sharedDB builds one Epinions-like DB for every test; catalogue
// construction dominates setup so it is done once.
func sharedDB(t *testing.T) *graphflow.DB {
	t.Helper()
	dbOnce.Do(func() {
		db, err := graphflow.NewFromDataset("Epinions", 1, &graphflow.Options{CatalogueZ: 200})
		if err != nil {
			t.Fatal(err)
		}
		testDB = db
	})
	return testDB
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.DB == nil {
		cfg.DB = sharedDB(t)
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// do issues one request against the in-process handler and returns the
// recorder. body may be a raw string or any JSON-marshalable value.
func do(t *testing.T, s *Server, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	return doCtx(t, s, context.Background(), method, path, body)
}

func doCtx(t *testing.T, s *Server, ctx context.Context, method, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var rd *bytes.Reader
	switch b := body.(type) {
	case nil:
		rd = bytes.NewReader(nil)
	case string:
		rd = bytes.NewReader([]byte(b))
	default:
		buf, err := json.Marshal(b)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	}
	req := httptest.NewRequest(method, path, rd).WithContext(ctx)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

const triangle = "a->b, b->c, a->c"

func TestHandlerTable(t *testing.T) {
	s := newTestServer(t, Config{})
	// One statement for the /execute cases.
	if w := do(t, s, "POST", "/prepare", prepareRequest{Name: "tri", Pattern: triangle}); w.Code != http.StatusCreated {
		t.Fatalf("prepare: status %d: %s", w.Code, w.Body)
	}

	cases := []struct {
		name       string
		method     string
		path       string
		body       any
		wantStatus int
		wantSubstr string // substring of the response body
	}{
		{"healthz", "GET", "/healthz", nil, http.StatusOK, `"ok"`},
		{"count triangle", "POST", "/query", queryRequest{Pattern: triangle}, http.StatusOK, `"count"`},
		{"match with limit", "POST", "/query", queryRequest{Pattern: triangle, Mode: "match", Limit: 5}, http.StatusOK, `"rows"`},
		{"parallel count", "POST", "/query", queryRequest{Pattern: triangle, Workers: 4}, http.StatusOK, `"count"`},
		{"bad pattern", "POST", "/query", queryRequest{Pattern: "a->"}, http.StatusBadRequest, "bad pattern"},
		{"disconnected pattern", "POST", "/query", queryRequest{Pattern: "a->b, c->d"}, http.StatusBadRequest, "bad pattern"},
		{"empty pattern", "POST", "/query", queryRequest{}, http.StatusBadRequest, "missing pattern"},
		{"malformed json", "POST", "/query", `{"pattern": `, http.StatusBadRequest, "bad request body"},
		{"bad mode", "POST", "/query", queryRequest{Pattern: triangle, Mode: "explode"}, http.StatusBadRequest, "unknown mode"},
		{"explain GET", "GET", "/explain?pattern=" + "a-%3Eb,b-%3Ec,a-%3Ec", nil, http.StatusOK, `"plan_kind"`},
		{"explain bad", "GET", "/explain?pattern=zzz", nil, http.StatusBadRequest, "bad pattern"},
		{"explain missing", "GET", "/explain", nil, http.StatusBadRequest, "missing pattern"},
		{"prepare duplicate", "POST", "/prepare", prepareRequest{Name: "tri", Pattern: triangle}, http.StatusConflict, "already prepared"},
		{"prepare nameless", "POST", "/prepare", prepareRequest{Pattern: triangle}, http.StatusBadRequest, "required"},
		{"prepare bad pattern", "POST", "/prepare", prepareRequest{Name: "bad", Pattern: "->"}, http.StatusBadRequest, "bad pattern"},
		{"execute", "POST", "/execute/tri", queryRequest{}, http.StatusOK, `"count"`},
		{"execute match", "POST", "/execute/tri", queryRequest{Mode: "match", Limit: 3}, http.StatusOK, `"rows"`},
		{"execute unknown", "POST", "/execute/nope", queryRequest{}, http.StatusNotFound, "no prepared statement"},
		{"stats", "GET", "/stats", nil, http.StatusOK, `"plan_cache"`},
		{"query wrong method", "GET", "/query", nil, http.StatusMethodNotAllowed, ""},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := do(t, s, tc.method, tc.path, tc.body)
			if w.Code != tc.wantStatus {
				t.Fatalf("status = %d, want %d (body: %s)", w.Code, tc.wantStatus, w.Body)
			}
			if tc.wantSubstr != "" && !strings.Contains(w.Body.String(), tc.wantSubstr) {
				t.Errorf("body %q does not contain %q", w.Body, tc.wantSubstr)
			}
		})
	}
}

func TestQueryCountValue(t *testing.T) {
	s := newTestServer(t, Config{})
	want, err := s.cfg.DB.Count(triangle, nil)
	if err != nil {
		t.Fatal(err)
	}
	w := do(t, s, "POST", "/query", queryRequest{Pattern: triangle})
	var resp queryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad response %s: %v", w.Body, err)
	}
	if resp.Count == nil || *resp.Count != want {
		t.Errorf("served count = %v, want %d", resp.Count, want)
	}
	if resp.PlanKind == "" {
		t.Error("missing plan_kind")
	}
}

// TestZeroCountSerialized pins the regression where "count":0 was
// dropped by omitempty: a query with no matches must still carry an
// explicit count field.
func TestZeroCountSerialized(t *testing.T) {
	s := newTestServer(t, Config{})
	// Epinions has a single vertex label, so label 9 matches nothing.
	w := do(t, s, "POST", "/query", queryRequest{Pattern: "a:9 -> b:9"})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), `"count":0`) {
		t.Errorf(`zero-match response must contain "count":0, got %s`, w.Body)
	}
}

// TestEmptyMatchSerializesRows: a match with zero results must still
// carry "rows":[] so clients can distinguish it from a count response.
func TestEmptyMatchSerializesRows(t *testing.T) {
	s := newTestServer(t, Config{})
	w := do(t, s, "POST", "/query", queryRequest{Pattern: "a:9 -> b:9", Mode: "match"})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), `"rows":[]`) {
		t.Errorf(`empty match response must contain "rows":[], got %s`, w.Body)
	}
}

// TestTruncatedOnClampedLimit: a client limit above MaxRows is clamped,
// and the response must admit the cut with truncated=true.
func TestTruncatedOnClampedLimit(t *testing.T) {
	s := newTestServer(t, Config{MaxRows: 5})
	w := do(t, s, "POST", "/query", queryRequest{Pattern: triangle, Mode: "match", Limit: 50})
	var resp queryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad response %s: %v", w.Body, err)
	}
	if resp.Rows == nil || len(*resp.Rows) != 5 {
		t.Fatalf("got rows %v, want the MaxRows clamp of 5", resp.Rows)
	}
	if !resp.Truncated {
		t.Error("clamped match response must set truncated")
	}
	// A caller limit below the ceiling is honored exactly and not
	// reported as truncation.
	w = do(t, s, "POST", "/query", queryRequest{Pattern: triangle, Mode: "match", Limit: 3})
	resp = queryResponse{}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Rows == nil || len(*resp.Rows) != 3 || resp.Truncated {
		t.Errorf("limit 3: got rows %v truncated=%v, want 3 rows untruncated", resp.Rows, resp.Truncated)
	}
}

// TestDeadlineReturns504 pins the timeout semantics: a server-side
// deadline that expires during execution surfaces as 504 Gateway
// Timeout. The default timeout is set below any possible execution time,
// so the executor's first context poll deterministically observes
// expiry.
func TestDeadlineReturns504(t *testing.T) {
	s := newTestServer(t, Config{DefaultTimeout: time.Nanosecond})
	w := do(t, s, "POST", "/query", queryRequest{Pattern: triangle})
	if w.Code != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want %d (body: %s)", w.Code, http.StatusGatewayTimeout, w.Body)
	}
	st := do(t, s, "GET", "/stats", nil)
	if !strings.Contains(st.Body.String(), `"deadlined":1`) {
		t.Errorf("stats should count the deadlined request: %s", st.Body)
	}
}

// TestHugeTimeoutMSClampsInsteadOfOverflowing: an absurd timeout_ms used
// to overflow into a negative deadline and 504 instantly; it must clamp
// to MaxTimeout and succeed.
func TestHugeTimeoutMSClampsInsteadOfOverflowing(t *testing.T) {
	s := newTestServer(t, Config{})
	w := do(t, s, "POST", "/query", queryRequest{Pattern: triangle, TimeoutMS: 9_300_000_000_000_000})
	if w.Code != http.StatusOK {
		t.Fatalf("status = %d, want 200 (body: %s)", w.Code, w.Body)
	}
}

// TestClientCancelReturns499 pins the cancellation semantics: when the
// client abandons the request (its context is cancelled rather than the
// server deadline expiring), the handler reports the non-standard 499.
func TestClientCancelReturns499(t *testing.T) {
	s := newTestServer(t, Config{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w := doCtx(t, s, ctx, "POST", "/query", queryRequest{Pattern: triangle})
	if w.Code != StatusClientClosedRequest {
		t.Fatalf("status = %d, want %d (body: %s)", w.Code, StatusClientClosedRequest, w.Body)
	}
}

// TestAdmissionLimitReturns429 fills the admission controller and
// checks that the next query is shed with 429 (queueing disabled here
// so saturation sheds immediately) and carries a Retry-After hint.
func TestAdmissionLimitReturns429(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 1, MaxQueueDepth: -1})
	if res := s.adm.acquire(context.Background(), priNormal, ""); !res.ok {
		t.Fatalf("could not occupy the only execution slot: %+v", res)
	}
	defer s.adm.release("")

	w := do(t, s, "POST", "/query", queryRequest{Pattern: triangle})
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want %d (body: %s)", w.Code, http.StatusTooManyRequests, w.Body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("shed response is missing the Retry-After header")
	}
	if !strings.Contains(w.Body.String(), shedQueueFull) {
		t.Errorf("shed body should carry the reason %q: %s", shedQueueFull, w.Body)
	}
	// Non-executing endpoints must stay available under load shedding.
	if w := do(t, s, "GET", "/healthz", nil); w.Code != http.StatusOK {
		t.Errorf("healthz unavailable during admission pressure: %d", w.Code)
	}
	st := do(t, s, "GET", "/stats", nil)
	if !strings.Contains(st.Body.String(), `"rejected":1`) {
		t.Errorf("stats should count the rejected request: %s", st.Body)
	}
}

// TestConcurrentExecuteOnePreparedStatement hammers a single prepared
// statement from many goroutines through a real HTTP server; run under
// -race this exercises the registry's locking, the admission semaphore
// and the compiled plan's concurrent execution.
func TestConcurrentExecuteOnePreparedStatement(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 128})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/prepare", "application/json",
		strings.NewReader(`{"name":"tri","pattern":"a->b, b->c, a->c"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("prepare: status %d", resp.StatusCode)
	}
	want, err := s.cfg.DB.Count(triangle, nil)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines, perG = 8, 5
	var wg sync.WaitGroup
	errc := make(chan error, goroutines*perG)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Mix modes and worker counts so count, limited match and
				// parallel runs interleave on the same compiled plan.
				body := `{"workers":2}`
				if i%2 == 1 {
					body = `{"mode":"match","limit":3}`
				}
				resp, err := http.Post(ts.URL+"/execute/tri", "application/json", strings.NewReader(body))
				if err != nil {
					errc <- err
					return
				}
				var qr queryResponse
				err = json.NewDecoder(resp.Body).Decode(&qr)
				resp.Body.Close()
				if err != nil {
					errc <- err
					return
				}
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("goroutine %d: status %d", g, resp.StatusCode)
					return
				}
				if i%2 == 0 && (qr.Count == nil || *qr.Count != want) {
					errc <- fmt.Errorf("goroutine %d: count %v, want %d", g, qr.Count, want)
					return
				}
				if i%2 == 1 && (qr.Rows == nil || len(*qr.Rows) != 3) {
					errc <- fmt.Errorf("goroutine %d: rows %v, want 3", g, qr.Rows)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}

// ingestDB builds a small private DB for mutation tests — the shared DB
// must stay frozen so other tests' counts are stable.
func ingestDB(t *testing.T) *graphflow.DB {
	t.Helper()
	b := graphflow.NewBuilder(4)
	b.AddEdge(0, 1, 0)
	b.AddEdge(1, 2, 0)
	db, err := b.Open(&graphflow.Options{CatalogueZ: 50, CatalogueH: 2})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestIngestAppliesBatchAndBumpsEpoch(t *testing.T) {
	db := ingestDB(t)
	s := newTestServer(t, Config{DB: db})

	// Close the triangle 0->1->2 with 2->0, plus a new vertex wired in.
	w := do(t, s, http.MethodPost, "/ingest", map[string]any{
		"add_vertices": []uint16{0},
		"add_edges": []map[string]any{
			{"src": 2, "dst": 0, "label": 0},
			{"src": 0, "dst": 4, "label": 0},
		},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("/ingest = %d: %s", w.Code, w.Body.String())
	}
	var resp struct {
		Epoch         uint64 `json:"epoch"`
		AddedVertices int    `json:"added_vertices"`
		AddedEdges    int    `json:"added_edges"`
		Vertices      int    `json:"vertices"`
		Edges         int    `json:"edges"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Epoch != 1 || resp.AddedVertices != 1 || resp.AddedEdges != 2 {
		t.Fatalf("ingest response %+v", resp)
	}
	if resp.Vertices != 5 || resp.Edges != 4 {
		t.Fatalf("live counts %d/%d, want 5/4", resp.Vertices, resp.Edges)
	}

	// The cycle query must now see the ingested edge.
	w = do(t, s, http.MethodPost, "/query", map[string]any{"pattern": "a->b, b->c, c->a"})
	if w.Code != http.StatusOK {
		t.Fatalf("/query = %d: %s", w.Code, w.Body.String())
	}
	var q struct {
		Count *int64 `json:"count"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &q); err != nil {
		t.Fatal(err)
	}
	if q.Count == nil || *q.Count != 3 {
		t.Fatalf("cycle count after ingest = %v, want 3 (one per rotation)", q.Count)
	}
}

func TestIngestDeleteEdges(t *testing.T) {
	db := ingestDB(t)
	s := newTestServer(t, Config{DB: db})
	w := do(t, s, http.MethodPost, "/ingest", map[string]any{
		"delete_edges": []map[string]any{{"src": 0, "dst": 1, "label": 0}},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("/ingest = %d: %s", w.Code, w.Body.String())
	}
	if db.NumEdges() != 1 {
		t.Fatalf("edges after delete = %d, want 1", db.NumEdges())
	}
}

func TestIngestRejectsBadBatches(t *testing.T) {
	db := ingestDB(t)
	s := newTestServer(t, Config{DB: db})
	epoch := db.Epoch()
	cases := []any{
		"{}", // empty batch
		map[string]any{"add_edges": []map[string]any{{"src": 0, "dst": 999, "label": 0}}},
		"not json",
	}
	for i, body := range cases {
		if w := do(t, s, http.MethodPost, "/ingest", body); w.Code != http.StatusBadRequest {
			t.Errorf("case %d: /ingest = %d, want 400: %s", i, w.Code, w.Body.String())
		}
	}
	if db.Epoch() != epoch {
		t.Fatalf("rejected batches moved the epoch: %d -> %d", epoch, db.Epoch())
	}
}

func TestCompactEndpointAndStatsEpoch(t *testing.T) {
	db := ingestDB(t)
	s := newTestServer(t, Config{DB: db})
	do(t, s, http.MethodPost, "/ingest", map[string]any{
		"add_edges": []map[string]any{{"src": 2, "dst": 3, "label": 0}},
	})

	var st struct {
		Graph struct {
			Epoch     uint64 `json:"epoch"`
			DeltaOps  int    `json:"delta_ops"`
			BaseEdges int    `json:"base_edges"`
			Edges     int    `json:"edges"`
			Ingested  int64  `json:"ingested_batches"`
		} `json:"graph"`
	}
	w := do(t, s, http.MethodGet, "/stats", nil)
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Graph.Epoch != 1 || st.Graph.DeltaOps != 1 || st.Graph.Ingested != 1 {
		t.Fatalf("stats after ingest: %+v", st.Graph)
	}

	w = do(t, s, http.MethodPost, "/compact", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("/compact = %d: %s", w.Code, w.Body.String())
	}
	var c struct {
		Epoch     uint64 `json:"epoch"`
		BaseEdges int    `json:"base_edges"`
		DeltaOps  int    `json:"delta_ops"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &c); err != nil {
		t.Fatal(err)
	}
	if c.Epoch != 2 || c.DeltaOps != 0 || c.BaseEdges != 3 {
		t.Fatalf("compact response %+v", c)
	}
}

// TestBatchCountersServed checks that count-mode responses carry the
// vectorized engine's per-stage batch counters, that /stats accumulates
// them, and that batch_size (including the oracle selector) round-trips.
func TestBatchCountersServed(t *testing.T) {
	s := newTestServer(t, Config{})
	w := do(t, s, "POST", "/query", queryRequest{Pattern: triangle})
	var resp queryResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatalf("bad response %s: %v", w.Body, err)
	}
	if resp.Batches == nil || resp.Batches.Scan == 0 {
		t.Fatalf("count response missing batch counters: %s", w.Body)
	}
	st := do(t, s, "GET", "/stats", nil)
	var stats statsResponse
	if err := json.Unmarshal(st.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	// (Extend stays 0 here: a pure count of a triangle factorizes its
	// only E/I stage, so no extend output batches are materialised.)
	if stats.Batches.Scan == 0 {
		t.Errorf("/stats batch counters not accumulated: %+v", stats.Batches)
	}

	// A request-supplied negative batch_size is rejected: it would
	// silently route onto the tuple-at-a-time oracle engine, which is a
	// server-config-only debugging path.
	wOracle := do(t, s, "POST", "/query", queryRequest{Pattern: triangle, BatchSize: -1})
	if wOracle.Code != http.StatusBadRequest {
		t.Errorf("batch_size=-1: status %d, want 400: %s", wOracle.Code, wOracle.Body)
	}

	// An explicit small batch size still answers correctly.
	wSmall := do(t, s, "POST", "/query", queryRequest{Pattern: triangle, BatchSize: 3})
	var respSmall queryResponse
	if err := json.Unmarshal(wSmall.Body.Bytes(), &respSmall); err != nil {
		t.Fatal(err)
	}
	if respSmall.Count == nil || *respSmall.Count != *resp.Count {
		t.Errorf("batch_size=3 count %v, want %v", respSmall.Count, *resp.Count)
	}
}
