package server

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestQueueGrantsWhenSlotFrees pins the queueing upgrade: a request
// arriving at capacity waits instead of shedding, and completes once
// the held slot releases.
func TestQueueGrantsWhenSlotFrees(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 1, MaxQueueWait: 5 * time.Second})
	if res := s.adm.acquire(context.Background(), priNormal, ""); !res.ok {
		t.Fatalf("could not occupy the slot: %+v", res)
	}

	type result struct{ code int }
	done := make(chan result, 1)
	go func() {
		w := do(t, s, "POST", "/query", queryRequest{Pattern: triangle})
		done <- result{w.Code}
	}()
	waitFor(t, "the query to queue", func() bool { return s.adm.queueDepth() == 1 })
	s.adm.release("")
	if r := <-done; r.code != http.StatusOK {
		t.Fatalf("queued query: status %d, want 200", r.code)
	}
}

// TestQueueTimeoutSheds429 pins the bounded wait: a queued request is
// shed with 429 queue_timeout and a Retry-After hint when no slot
// frees within MaxQueueWait.
func TestQueueTimeoutSheds429(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 1, MaxQueueWait: 20 * time.Millisecond})
	if res := s.adm.acquire(context.Background(), priNormal, ""); !res.ok {
		t.Fatalf("could not occupy the slot: %+v", res)
	}
	defer s.adm.release("")

	w := do(t, s, "POST", "/query", queryRequest{Pattern: triangle})
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429 (body: %s)", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), shedQueueTimeout) {
		t.Errorf("body should carry reason %q: %s", shedQueueTimeout, w.Body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("queue-timeout shed is missing Retry-After")
	}
}

// TestClientGoneWhileQueuedReturns499 pins the disconnect path: a
// client that cancels while queued gets 499, not a shed count.
func TestClientGoneWhileQueuedReturns499(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 1, MaxQueueWait: 5 * time.Second})
	if res := s.adm.acquire(context.Background(), priNormal, ""); !res.ok {
		t.Fatalf("could not occupy the slot: %+v", res)
	}
	defer s.adm.release("")

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan int, 1)
	go func() {
		w := doCtx(t, s, ctx, "POST", "/query", queryRequest{Pattern: triangle})
		done <- w.Code
	}()
	waitFor(t, "the query to queue", func() bool { return s.adm.queueDepth() == 1 })
	rejectedBefore := s.rejected.Load()
	cancel()
	if code := <-done; code != StatusClientClosedRequest {
		t.Fatalf("status = %d, want %d", code, StatusClientClosedRequest)
	}
	if got := s.rejected.Load(); got != rejectedBefore {
		t.Errorf("client disconnect was counted as a shed: rejected %d -> %d", rejectedBefore, got)
	}
}

// TestPriorityOrdering pins the queue discipline: when a slot frees,
// a high-priority waiter is granted before an earlier low-priority one.
func TestPriorityOrdering(t *testing.T) {
	a := newAdmission(1, 8, 5*time.Second, nil, 0)
	if res := a.acquire(context.Background(), priNormal, ""); !res.ok {
		t.Fatalf("could not occupy the slot: %+v", res)
	}
	results := make(chan string, 2)
	go func() {
		a.acquire(context.Background(), priLow, "")
		results <- "low"
		a.release("")
	}()
	waitFor(t, "the low waiter to queue", func() bool { return a.queueDepth() == 1 })
	go func() {
		a.acquire(context.Background(), priHigh, "")
		results <- "high"
		a.release("")
	}()
	waitFor(t, "the high waiter to queue", func() bool { return a.queueDepth() == 2 })
	a.release("")
	if first := <-results; first != "high" {
		t.Fatalf("first grant went to %q, want high", first)
	}
	if second := <-results; second != "low" {
		t.Fatalf("second grant went to %q, want low", second)
	}
	waitFor(t, "all slots to release", func() bool { return a.inFlightCount() == 0 })
}

// TestTenantQuotaSheds429 pins per-tenant isolation: a tenant at its
// quota is shed with tenant_quota even though slots are free, while
// other tenants keep executing.
func TestTenantQuotaSheds429(t *testing.T) {
	s := newTestServer(t, Config{
		MaxConcurrent: 4,
		TenantQuotas:  map[string]int{"alice": 1},
	})
	if res := s.adm.acquire(context.Background(), priNormal, "alice"); !res.ok {
		t.Fatalf("could not occupy alice's slot: %+v", res)
	}
	defer s.adm.release("alice")

	w := doTenant(t, s, "alice", queryRequest{Pattern: triangle})
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("alice at quota: status %d, want 429 (body: %s)", w.Code, w.Body)
	}
	if !strings.Contains(w.Body.String(), shedTenantQuota) {
		t.Errorf("body should carry reason %q: %s", shedTenantQuota, w.Body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("tenant-quota shed is missing Retry-After")
	}
	if w := doTenant(t, s, "bob", queryRequest{Pattern: triangle}); w.Code != http.StatusOK {
		t.Fatalf("bob should still execute: status %d (body: %s)", w.Code, w.Body)
	}
}

// doTenant issues one /query carrying an X-Tenant header.
func doTenant(t *testing.T, s *Server, tenant string, body queryRequest) *httptest.ResponseRecorder {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/query", bytes.NewReader(buf))
	req.Header.Set("X-Tenant", tenant)
	w := httptest.NewRecorder()
	s.ServeHTTP(w, req)
	return w
}

// TestIngestAndCompactShedWithRetryAfter pins the satellite fix: the
// mutation endpoints share admission and their 429s now carry
// Retry-After like the query endpoints.
func TestIngestAndCompactShedWithRetryAfter(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 1, MaxQueueDepth: -1})
	if res := s.adm.acquire(context.Background(), priNormal, ""); !res.ok {
		t.Fatalf("could not occupy the slot: %+v", res)
	}
	defer s.adm.release("")

	for _, tc := range []struct {
		path string
		body any
	}{
		{"/ingest", ingestRequest{AddVertices: []uint16{0}}},
		{"/compact", nil},
	} {
		w := do(t, s, "POST", tc.path, tc.body)
		if w.Code != http.StatusTooManyRequests {
			t.Errorf("%s: status %d, want 429 (body: %s)", tc.path, w.Code, w.Body)
			continue
		}
		if w.Header().Get("Retry-After") == "" {
			t.Errorf("%s: 429 is missing Retry-After", tc.path)
		}
	}
}

// TestDrainRefusesLateIngest pins the drain/ingest serialization: once
// Drain begins, a late /ingest is refused with 503 + Retry-After
// instead of racing the shutdown, and Drain returns only after the
// in-flight slot releases.
func TestDrainRefusesLateIngest(t *testing.T) {
	s := newTestServer(t, Config{MaxConcurrent: 1})
	if res := s.adm.acquire(context.Background(), priNormal, ""); !res.ok {
		t.Fatalf("could not occupy the slot (the in-flight request): %+v", res)
	}

	drained := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		drained <- s.Drain(ctx)
	}()
	waitFor(t, "drain to begin", func() bool {
		s.adm.mu.Lock()
		defer s.adm.mu.Unlock()
		return s.adm.draining
	})

	w := do(t, s, "POST", "/ingest", ingestRequest{AddVertices: []uint16{0}})
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("late ingest during drain: status %d, want 503 (body: %s)", w.Code, w.Body)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Error("drain shed is missing Retry-After")
	}
	select {
	case err := <-drained:
		t.Fatalf("Drain returned %v before the in-flight slot released", err)
	default:
	}
	s.adm.release("")
	if err := <-drained; err != nil {
		t.Fatalf("Drain: %v", err)
	}
}

// TestBudgetExceededReturns422 pins the budget-abort contract end to
// end: a query whose mem_budget_bytes cannot cover even its batch
// buffers comes back as a structured 422 naming the ceiling, and the
// server keeps serving unbudgeted queries afterwards.
func TestBudgetExceededReturns422(t *testing.T) {
	s := newTestServer(t, Config{})
	w := do(t, s, "POST", "/query", queryRequest{Pattern: triangle, MemBudgetBytes: 512})
	if w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422 (body: %s)", w.Code, w.Body)
	}
	body := w.Body.String()
	if !strings.Contains(body, `"code":"budget_exceeded"`) {
		t.Errorf("422 body should carry code budget_exceeded: %s", body)
	}
	if !strings.Contains(body, `"limit_bytes":512`) {
		t.Errorf("422 body should name the 512-byte ceiling: %s", body)
	}
	// The abort left nothing behind: the same server answers the same
	// pattern correctly without a budget.
	if w := do(t, s, "POST", "/query", queryRequest{Pattern: triangle}); w.Code != http.StatusOK {
		t.Fatalf("post-abort query: status %d (body: %s)", w.Code, w.Body)
	}
	st := do(t, s, "GET", "/stats", nil)
	if !strings.Contains(st.Body.String(), `"budget_aborts":1`) {
		t.Errorf("stats should count the budget abort: %s", st.Body)
	}
	// A negative budget is a client error, not an abort.
	if w := do(t, s, "POST", "/query", queryRequest{Pattern: triangle, MemBudgetBytes: -1}); w.Code != http.StatusBadRequest {
		t.Fatalf("negative budget: status %d, want 400 (body: %s)", w.Code, w.Body)
	}
}
