package server

import (
	"context"
	"sync"
	"time"
)

// This file is the admission controller: the flat semaphore of the
// original serving layer upgraded to a bounded priority queue with
// per-tenant quotas, deadline-aware waiting and drain support. The
// controller owns exactly two resources — execution slots (capacity)
// and queue positions (queueCap) — and every refusal is labelled with
// one of the shed reasons below so overload is diagnosable from the
// graphflow_admission_shed_total metric alone.

// Shed reasons label admission refusals in metrics and error bodies.
const (
	// shedQueueFull: the wait queue is at MaxQueueDepth (or queueing is
	// disabled) and every execution slot is busy.
	shedQueueFull = "queue_full"
	// shedQueueTimeout: the request queued but no slot freed within
	// MaxQueueWait.
	shedQueueTimeout = "queue_timeout"
	// shedTenantQuota: the request's tenant already holds its quota of
	// concurrent slots.
	shedTenantQuota = "tenant_quota"
	// shedDraining: the server is draining for shutdown and refuses new
	// work.
	shedDraining = "draining"
)

// Priority classes of the wait queue, highest first. Requests select
// one with the X-Priority header; slots freed under contention go to
// the highest non-empty class in FIFO order.
const (
	priHigh = iota
	priNormal
	priLow
	numPriorities
)

// priorityFrom maps the X-Priority header onto a queue class; anything
// unrecognised (including absence) is normal.
func priorityFrom(h string) int {
	switch h {
	case "high":
		return priHigh
	case "low":
		return priLow
	}
	return priNormal
}

// waiter is one request queued for an execution slot. Its outcome
// fields (granted, shed) are written under admission.mu before ready is
// signalled; the channel send orders them for the waiting goroutine.
type waiter struct {
	ready   chan struct{} // buffered 1: grant/shed never blocks
	done    bool          // outcome decided (or waiter abandoned); guarded by admission.mu
	granted bool
	shed    string
	tenant  string
	pri     int
}

// admitResult is the outcome of one acquire call.
type admitResult struct {
	ok bool
	// shed is the refusal reason when !ok (empty when the client went
	// away instead).
	shed string
	// clientGone: the request context was cancelled while queued — a
	// client disappearance, not a load-shedding decision.
	clientGone bool
	// waited is the time spent queued (0 for fast-path grants).
	waited time.Duration
}

// admission is the slot controller. All state is guarded by mu; the
// only blocking happens in acquire, outside the lock, on the waiter's
// ready channel.
type admission struct {
	mu       sync.Mutex
	capacity int
	inFlight int
	queues   [numPriorities][]*waiter
	queued   int
	queueCap int
	maxWait  time.Duration
	quotas   map[string]int
	defQuota int
	held     map[string]int // concurrent slots per tenant
	draining bool
	drained  chan struct{} // closed when draining and inFlight hits 0
}

func newAdmission(capacity, queueCap int, maxWait time.Duration, quotas map[string]int, defQuota int) *admission {
	return &admission{
		capacity: capacity,
		queueCap: queueCap,
		maxWait:  maxWait,
		quotas:   quotas,
		defQuota: defQuota,
		held:     make(map[string]int),
	}
}

// quotaFor resolves a tenant's concurrent-slot cap (0 = unlimited).
// The empty tenant (no header) is never quota-limited per tenant — it
// is bounded by capacity alone.
func (a *admission) quotaFor(tenant string) int {
	if tenant == "" {
		return 0
	}
	if q, ok := a.quotas[tenant]; ok {
		return q
	}
	return a.defQuota
}

// acquire obtains an execution slot for tenant at priority pri,
// queueing for at most maxWait when the server is at capacity. The
// caller must pass the request context so a client that disconnects
// while queued releases its queue position promptly.
func (a *admission) acquire(ctx context.Context, pri int, tenant string) admitResult {
	a.mu.Lock()
	if a.draining {
		a.mu.Unlock()
		return admitResult{shed: shedDraining}
	}
	if q := a.quotaFor(tenant); q > 0 && a.held[tenant] >= q {
		a.mu.Unlock()
		return admitResult{shed: shedTenantQuota}
	}
	if a.inFlight < a.capacity {
		a.inFlight++
		a.held[tenant]++
		a.mu.Unlock()
		return admitResult{ok: true}
	}
	if a.queueCap <= 0 || a.maxWait <= 0 || a.queued >= a.queueCap {
		a.mu.Unlock()
		return admitResult{shed: shedQueueFull}
	}
	w := &waiter{ready: make(chan struct{}, 1), tenant: tenant, pri: pri}
	a.queues[pri] = append(a.queues[pri], w)
	a.queued++
	a.mu.Unlock()

	start := time.Now()
	timer := time.NewTimer(a.maxWait)
	defer timer.Stop()
	select {
	case <-w.ready:
		return a.outcome(w, start)
	case <-timer.C:
		return a.abandon(w, start, shedQueueTimeout, false)
	case <-ctx.Done():
		return a.abandon(w, start, "", true)
	}
}

// outcome reads a signalled waiter's grant/shed decision.
func (a *admission) outcome(w *waiter, start time.Time) admitResult {
	waited := time.Since(start)
	if w.granted {
		return admitResult{ok: true, waited: waited}
	}
	return admitResult{shed: w.shed, waited: waited}
}

// abandon removes w from the queue after a timeout or client
// disconnect. A grant (or drain shed) may have raced in first: the
// done flag decides under the lock, and a raced-in outcome wins so a
// granted slot is never dropped on the floor.
func (a *admission) abandon(w *waiter, start time.Time, shed string, clientGone bool) admitResult {
	a.mu.Lock()
	if w.done {
		a.mu.Unlock()
		<-w.ready
		return a.outcome(w, start)
	}
	w.done = true
	a.removeLocked(w)
	a.mu.Unlock()
	return admitResult{shed: shed, clientGone: clientGone, waited: time.Since(start)}
}

// removeLocked deletes w from its priority queue.
func (a *admission) removeLocked(w *waiter) {
	q := a.queues[w.pri]
	for i, cand := range q {
		if cand == w {
			a.queues[w.pri] = append(q[:i], q[i+1:]...)
			a.queued--
			return
		}
	}
}

// nextLocked pops the next grantable waiter: highest priority class
// first, FIFO within a class, skipping waiters whose tenant is at
// quota (they stay queued and become grantable when their own tenant
// releases a slot, or time out).
func (a *admission) nextLocked() *waiter {
	for p := 0; p < numPriorities; p++ {
		for i, w := range a.queues[p] {
			if q := a.quotaFor(w.tenant); q > 0 && a.held[w.tenant] >= q {
				continue
			}
			a.queues[p] = append(a.queues[p][:i], a.queues[p][i+1:]...)
			a.queued--
			return w
		}
	}
	return nil
}

// release returns tenant's slot. If a grantable waiter is queued the
// slot is handed over directly — inFlight never dips, so capacity is
// never transiently under-used while waiters exist; otherwise the slot
// is freed, and during a drain the last release closes the drained
// channel.
func (a *admission) release(tenant string) {
	a.mu.Lock()
	if a.held[tenant] <= 1 {
		delete(a.held, tenant)
	} else {
		a.held[tenant]--
	}
	if w := a.nextLocked(); w != nil {
		w.done, w.granted = true, true
		a.held[w.tenant]++
		w.ready <- struct{}{}
	} else {
		a.inFlight--
		if a.draining && a.inFlight == 0 {
			close(a.drained)
		}
	}
	a.mu.Unlock()
}

// beginDrain flips the controller into draining: every queued waiter
// is shed immediately, new arrivals are refused with shedDraining, and
// the returned channel closes once the last in-flight slot releases.
// Idempotent — later calls return the same channel.
func (a *admission) beginDrain() <-chan struct{} {
	a.mu.Lock()
	defer a.mu.Unlock()
	if !a.draining {
		a.draining = true
		a.drained = make(chan struct{})
		for p := range a.queues {
			for _, w := range a.queues[p] {
				if !w.done {
					w.done = true
					w.shed = shedDraining
					w.ready <- struct{}{}
				}
			}
			a.queues[p] = nil
		}
		a.queued = 0
		if a.inFlight == 0 {
			close(a.drained)
		}
	}
	return a.drained
}

// queueDepth reports how many requests are waiting for a slot.
func (a *admission) queueDepth() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.queued
}

// inFlightCount reports how many slots are currently held.
func (a *admission) inFlightCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.inFlight
}
