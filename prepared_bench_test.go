package graphflow

import "testing"

// benchDB builds a small deterministic sparse graph: execution of the
// benchmark pattern costs microseconds, so the spread between the
// uncached / cached / prepared variants is the planning overhead that
// the plan cache amortizes away (the short-running-query regime that
// motivates prepared queries).
func benchDB(b *testing.B) *DB {
	return benchDBOpts(b, &Options{CatalogueZ: 100})
}

func benchDBOpts(b *testing.B, opts *Options) *DB {
	b.Helper()
	const n = 300
	bd := NewBuilder(n)
	for i := uint32(0); i < n; i++ {
		for _, d := range []uint32{i*7 + 1, i*13 + 2, i*29 + 3} {
			if dst := d % n; dst != i {
				bd.AddEdge(i, dst, 0)
			}
		}
	}
	db, err := bd.Open(opts)
	if err != nil {
		b.Fatal(err)
	}
	return db
}

// A 6-vertex pattern: large enough that the optimizer's plan-spectrum
// enumeration is the dominant cost on the small benchmark graph.
const benchPattern = "a->b, b->c, c->d, d->e, e->f, a->f, a->c, b->d"

// BenchmarkCountUncached forces a full parse/canonicalize/optimize/compile
// on every call — the pre-plan-cache behaviour.
func BenchmarkCountUncached(b *testing.B) {
	db := benchDB(b)
	qo := &QueryOptions{SkipPlanCache: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Count(benchPattern, qo); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCountCached goes through the DB's plan cache: after the first
// call every iteration pays parse+canonicalize+execute but no
// optimization or compilation.
func BenchmarkCountCached(b *testing.B) {
	db := benchDB(b)
	if _, err := db.Count(benchPattern, nil); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Count(benchPattern, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCountPrepared reuses a PreparedQuery: iterations pay execution
// only — the compile-once/run-many steady state.
func BenchmarkCountPrepared(b *testing.B) {
	db := benchDB(b)
	pq, err := db.Prepare(benchPattern)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pq.Count(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanningOnly isolates what the cache saves: Explain performs
// parse+canonicalize+optimize+compile but never executes, and with the
// plan cache disabled it re-plans on every call.
func BenchmarkPlanningOnly(b *testing.B) {
	db := benchDBOpts(b, &Options{CatalogueZ: 100, PlanCacheSize: -1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.Explain(benchPattern); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPreparedParallel exercises one shared PreparedQuery from
// parallel goroutines — the server-shaped workload.
func BenchmarkPreparedParallel(b *testing.B) {
	db := benchDB(b)
	pq, err := db.Prepare(benchPattern)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := pq.Count(nil); err != nil {
				b.Error(err)
				return
			}
		}
	})
}
