package graphflow

import (
	"sync"
	"testing"
)

const triPattern = "a->b, b->c, a->c"

// TestMutationsChangeCounts drives the public mutation API end to end:
// live counts, query results and stats all track the current epoch.
func TestMutationsChangeCounts(t *testing.T) {
	db := tinyDB(t)
	if n, _ := db.Count(triPattern, nil); n != 1 {
		t.Fatalf("seed triangle count = %d, want 1", n)
	}
	v0, e0 := db.NumVertices(), db.NumEdges()

	// Close a second triangle 2->3->4 with 2->4.
	added, err := db.AddEdge(2, 4, 0)
	if err != nil || !added {
		t.Fatalf("AddEdge: added=%v err=%v", added, err)
	}
	if db.NumEdges() != e0+1 {
		t.Fatalf("NumEdges = %d after add, want %d (live epoch, not frozen base)", db.NumEdges(), e0+1)
	}
	if st := db.GraphStats(); st.Edges != e0+1 || st.Vertices != v0 {
		t.Fatalf("GraphStats reports V=%d E=%d, want V=%d E=%d", st.Vertices, st.Edges, v0, e0+1)
	}
	if n, _ := db.Count(triPattern, nil); n != 2 {
		t.Fatalf("triangle count after add = %d, want 2", n)
	}

	// Remove the original triangle's closing edge.
	deleted, err := db.DeleteEdge(0, 2, 0)
	if err != nil || !deleted {
		t.Fatalf("DeleteEdge: deleted=%v err=%v", deleted, err)
	}
	if n, _ := db.Count(triPattern, nil); n != 1 {
		t.Fatalf("triangle count after delete = %d, want 1", n)
	}

	// A batch wiring a new vertex into a third triangle.
	res, err := db.Apply(Batch{
		AddVertices: []uint16{0},
		AddEdges:    []EdgeOp{{Src: 4, Dst: 5, Label: 0}, {Src: 3, Dst: 5, Label: 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AddedVertices != 1 || res.FirstNewVertex != 5 || res.AddedEdges != 2 {
		t.Fatalf("Apply result %+v", res)
	}
	if n, _ := db.Count(triPattern, nil); n != 2 {
		t.Fatalf("triangle count after batch = %d, want 2", n)
	}
	ls := db.LiveStats()
	if ls.Epoch != 3 || ls.Vertices != 6 || ls.DeltaOps == 0 {
		t.Fatalf("LiveStats %+v", ls)
	}
}

// TestPlanCacheEpochInvalidation checks that an epoch bump invalidates
// cached plans: the same pattern misses the plan cache again after a
// mutation, and hits again once the epoch is stable.
func TestPlanCacheEpochInvalidation(t *testing.T) {
	db := tinyDB(t)
	if _, err := db.Count(triPattern, nil); err != nil {
		t.Fatal(err)
	}
	st := db.PlanCacheStats()
	if st.Misses == 0 {
		t.Fatalf("first count did not miss the plan cache: %+v", st)
	}
	baseMisses, baseHits := st.Misses, st.Hits

	if _, err := db.Count(triPattern, nil); err != nil {
		t.Fatal(err)
	}
	st = db.PlanCacheStats()
	if st.Hits != baseHits+1 || st.Misses != baseMisses {
		t.Fatalf("stable-epoch recount should hit: %+v (base hits %d misses %d)", st, baseHits, baseMisses)
	}

	if _, err := db.AddEdge(4, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Count(triPattern, nil); err != nil {
		t.Fatal(err)
	}
	st = db.PlanCacheStats()
	if st.Misses != baseMisses+1 {
		t.Fatalf("post-mutation count should miss (epoch-versioned key): %+v", st)
	}
}

// TestPreparedReplansAfterCompaction checks the prepared-query lifecycle
// across epochs: a PreparedQuery keeps working through mutations and
// compaction, re-planning transparently, and PlanCacheStats shows the
// invalidation as fresh misses.
func TestPreparedReplansAfterCompaction(t *testing.T) {
	db := tinyDB(t)
	pq, err := db.Prepare(triPattern)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := pq.Count(nil); n != 1 {
		t.Fatalf("prepared count = %d, want 1", n)
	}
	missesBefore := db.PlanCacheStats().Misses

	if _, err := db.AddEdge(2, 4, 0); err != nil { // second triangle 2->3->4, 2->4... needs 3->4 (present)
		t.Fatal(err)
	}
	epochBeforeCompact := db.Epoch()
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	if db.Epoch() != epochBeforeCompact+1 {
		t.Fatalf("compaction did not bump the epoch: %d -> %d", epochBeforeCompact, db.Epoch())
	}
	if db.LiveStats().DeltaOps != 0 {
		t.Fatalf("overlay not folded: %+v", db.LiveStats())
	}

	// The same prepared query must re-plan against the compacted epoch
	// and see the new triangle.
	if n, _ := pq.Count(nil); n != 2 {
		t.Fatalf("prepared count after compaction = %d, want 2", n)
	}
	if misses := db.PlanCacheStats().Misses; misses != missesBefore+1 {
		t.Fatalf("re-plan after compaction should register one plan-cache miss: %d -> %d", missesBefore, misses)
	}
	// Stable epoch again: the prepared query reuses its resolved plan
	// without further cache traffic.
	statsBefore := db.PlanCacheStats()
	if n, _ := pq.Count(nil); n != 2 {
		t.Fatal("prepared recount diverged")
	}
	if st := db.PlanCacheStats(); st != statsBefore {
		t.Fatalf("stable-epoch prepared recount touched the cache: %+v -> %+v", statsBefore, st)
	}
}

// TestConcurrentPreparedAcrossEpochs runs one PreparedQuery from many
// goroutines while a writer mutates and compacts — the -race exercise
// for the epoch-tracking resolve path. Every observed count must be a
// value the graph logically held at some epoch (1..3 triangles).
func TestConcurrentPreparedAcrossEpochs(t *testing.T) {
	db := tinyDB(t)
	pq, err := db.Prepare(triPattern)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				n, err := pq.Count(nil)
				if err != nil {
					t.Errorf("prepared count: %v", err)
					return
				}
				if n < 1 || n > 3 {
					t.Errorf("count %d outside any epoch's value", n)
					return
				}
			}
		}()
	}
	writerOps := []Batch{
		{AddEdges: []EdgeOp{{Src: 2, Dst: 4, Label: 0}}},                                                       // +triangle 2->3->4
		{AddVertices: []uint16{0}, AddEdges: []EdgeOp{{Src: 4, Dst: 5, Label: 0}, {Src: 3, Dst: 5, Label: 0}}}, // +triangle 3->4->5
		{DeleteEdges: []EdgeOp{{Src: 2, Dst: 4, Label: 0}}},
	}
	for i, b := range writerOps {
		if _, err := db.Apply(b); err != nil {
			t.Fatalf("writer batch %d: %v", i, err)
		}
		if i == 1 {
			if err := db.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	db.WaitCompaction()
	if n, _ := pq.Count(nil); n != 2 {
		t.Fatalf("final count = %d, want 2", n)
	}
}
