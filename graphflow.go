// Package graphflow is a Go reimplementation of the subgraph-query
// optimizer of Mhedhbi & Salihoglu, "Optimizing Subgraph Queries by
// Combining Binary and Worst-Case Optimal Joins" (PVLDB 12(11), 2019),
// together with the Graphflow-style evaluation engine it plans for.
//
// A DB wraps an immutable directed, labelled graph plus a subgraph
// catalogue (the optimizer's statistics). Queries are textual patterns:
//
//	db, _ := graphflow.NewFromDataset("Epinions", 1, nil)
//	n, _ := db.Count("a->b, b->c, a->c", nil) // asymmetric triangles
//
// The optimizer chooses among worst-case-optimal (multiway-intersection)
// plans, binary-join plans and hybrids, using the intersection-cost model
// of the paper; execution supports parallel workers, an intersection
// cache, and adaptive per-tuple re-selection of query vertex orderings.
package graphflow

import (
	"fmt"
	"io"
	"math/rand"

	"graphflow/internal/adaptive"
	"graphflow/internal/catalogue"
	"graphflow/internal/datagen"
	"graphflow/internal/exec"
	"graphflow/internal/graph"
	"graphflow/internal/optimizer"
	"graphflow/internal/plan"
	"graphflow/internal/query"
)

// Options configures DB construction.
type Options struct {
	// CatalogueH is the largest subquery size sampled into the catalogue
	// (paper Section 5.1); default 3.
	CatalogueH int
	// CatalogueZ is the number of edges sampled per catalogue entry chain;
	// default 1000.
	CatalogueZ int
	// Seed drives catalogue sampling; default 1.
	Seed int64
	// CalibrateJoinWeights runs the empirical w1/w2 calibration of Section
	// 4.2 on this machine instead of using the defaults.
	CalibrateJoinWeights bool
}

func (o *Options) withDefaults() Options {
	var out Options
	if o != nil {
		out = *o
	}
	if out.CatalogueH == 0 {
		out.CatalogueH = 3
	}
	if out.CatalogueZ == 0 {
		out.CatalogueZ = 1000
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	return out
}

// DB is an immutable graph database instance: graph, catalogue, and
// calibrated cost-model weights.
type DB struct {
	g      *graph.Graph
	cat    *catalogue.Catalogue
	w1, w2 float64
}

// QueryOptions tunes one query evaluation.
type QueryOptions struct {
	// Workers parallelises execution (paper Section 7); default 1.
	Workers int
	// Adaptive re-picks query vertex orderings per tuple (Section 6).
	Adaptive bool
	// WCOOnly restricts planning to worst-case-optimal plans.
	WCOOnly bool
	// DisableCache turns off the intersection cache.
	DisableCache bool
	// Limit stops after this many matches (0 = all; forces Workers=1).
	Limit int64
	// Distinct switches from the paper's join (homomorphism) semantics to
	// subgraph-isomorphism semantics: every query vertex must bind a
	// distinct data vertex. Implemented as a post-filter.
	Distinct bool
}

// Stats reports what one evaluation did.
type Stats struct {
	Matches      int64
	Intermediate int64
	ICost        int64
	CacheHits    int64
	PlanKind     string // "wco", "bj" or "hybrid"
	Plan         string // operator tree, one operator per line
}

// newDB builds the catalogue and weights for a finished graph.
func newDB(g *graph.Graph, opts Options) *DB {
	db := &DB{
		g:  g,
		w1: optimizer.DefaultW1,
		w2: optimizer.DefaultW2,
	}
	db.cat = catalogue.Build(g, catalogue.Config{H: opts.CatalogueH, Z: opts.CatalogueZ, Seed: opts.Seed})
	if opts.CalibrateJoinWeights {
		db.w1, db.w2 = optimizer.Calibrate(g)
	}
	return db
}

// NewFromEdgeList builds a DB from the textual edge-list format of
// internal/graph (a superset of SNAP's: optional "v id label" lines and an
// optional third edge-label column).
func NewFromEdgeList(r io.Reader, opts *Options) (*DB, error) {
	g, err := graph.LoadEdgeList(r)
	if err != nil {
		return nil, err
	}
	return newDB(g, opts.withDefaults()), nil
}

// NewFromDataset builds a DB over one of the built-in synthetic datasets
// mirroring the paper's Table 8: "Amazon", "Epinions", "LiveJournal",
// "Twitter", "BerkStan", "Google" or "Human". scale multiplies the default
// size.
func NewFromDataset(name string, scale int, opts *Options) (*DB, error) {
	g := datagen.ByName(name, scale)
	if g == nil {
		return nil, fmt.Errorf("graphflow: unknown dataset %q (have %v)", name, datagen.Names())
	}
	return newDB(g, opts.withDefaults()), nil
}

// Builder accumulates a graph edge by edge before opening a DB.
type Builder struct {
	b *graph.Builder
}

// NewBuilder starts a graph with numVertices vertices (labelled 0).
func NewBuilder(numVertices int) *Builder {
	return &Builder{b: graph.NewBuilder(numVertices)}
}

// AddVertex appends a labelled vertex and returns its ID.
func (b *Builder) AddVertex(label uint16) uint32 {
	return uint32(b.b.AddVertex(graph.Label(label)))
}

// SetVertexLabel labels an existing vertex.
func (b *Builder) SetVertexLabel(v uint32, label uint16) {
	b.b.SetVertexLabel(graph.VertexID(v), graph.Label(label))
}

// AddEdge records a directed labelled edge.
func (b *Builder) AddEdge(src, dst uint32, label uint16) {
	b.b.AddEdge(graph.VertexID(src), graph.VertexID(dst), graph.Label(label))
}

// Open freezes the graph and builds the DB.
func (b *Builder) Open(opts *Options) (*DB, error) {
	g, err := b.b.Build()
	if err != nil {
		return nil, err
	}
	return newDB(g, opts.withDefaults()), nil
}

// NumVertices returns the graph's vertex count.
func (db *DB) NumVertices() int { return db.g.NumVertices() }

// NumEdges returns the graph's edge count.
func (db *DB) NumEdges() int { return db.g.NumEdges() }

// plan compiles the pattern into an optimized physical plan.
func (db *DB) plan(pattern string, qo QueryOptions) (*query.Graph, *planWrap, error) {
	q, err := query.ParseAny(pattern)
	if err != nil {
		return nil, nil, err
	}
	p, err := optimizer.Optimize(q, optimizer.Options{
		Catalogue: db.cat,
		W1:        db.w1,
		W2:        db.w2,
		WCOOnly:   qo.WCOOnly,
	})
	if err != nil {
		return nil, nil, err
	}
	return q, &planWrap{p}, nil
}

// Count evaluates the pattern and returns the number of matches. opts may
// be nil.
func (db *DB) Count(pattern string, opts *QueryOptions) (int64, error) {
	n, _, err := db.CountStats(pattern, opts)
	return n, err
}

// CountStats is Count plus the execution statistics and plan description.
func (db *DB) CountStats(pattern string, opts *QueryOptions) (int64, Stats, error) {
	var qo QueryOptions
	if opts != nil {
		qo = *opts
	}
	_, pw, err := db.plan(pattern, qo)
	if err != nil {
		return 0, Stats{}, err
	}
	var prof exec.Profile
	var n int64
	switch {
	case qo.Distinct:
		r := &exec.Runner{Graph: db.g, Workers: qo.Workers, DisableCache: qo.DisableCache}
		var count int64
		prof, err = r.Run(pw.p, func(t []graph.VertexID) {
			if allDistinct(t) {
				count++
			}
		})
		n = count
	case qo.Adaptive:
		ev := &adaptive.Evaluator{Graph: db.g, Catalogue: db.cat, Config: adaptive.Config{Workers: qo.Workers}}
		n, prof, err = ev.Count(pw.p)
	case qo.Limit > 0:
		r := &exec.Runner{Graph: db.g, DisableCache: qo.DisableCache}
		n, prof, err = r.CountUpTo(pw.p, qo.Limit)
	default:
		// Pure counting can skip enumerating the last extension's Cartesian
		// product (factorized counting); the count is exact.
		r := &exec.Runner{Graph: db.g, Workers: qo.Workers, DisableCache: qo.DisableCache, FastCount: true}
		n, prof, err = r.Count(pw.p)
	}
	if err != nil {
		return 0, Stats{}, err
	}
	return n, statsFrom(pw, prof, n), nil
}

// allDistinct reports whether the tuple binds pairwise-distinct data
// vertices (tuples are short: quadratic scan beats allocation).
func allDistinct(t []graph.VertexID) bool {
	for i := 1; i < len(t); i++ {
		for j := 0; j < i; j++ {
			if t[i] == t[j] {
				return false
			}
		}
	}
	return true
}

// Match evaluates the pattern, invoking fn with each match as a map from
// vertex name to data vertex ID; fn returning false stops enumeration.
// Single-threaded.
func (db *DB) Match(pattern string, fn func(map[string]uint32) bool, opts *QueryOptions) error {
	var qo QueryOptions
	if opts != nil {
		qo = *opts
	}
	q, pw, err := db.plan(pattern, qo)
	if err != nil {
		return err
	}
	layout := pw.p.Root.Out()
	names := make([]string, len(layout))
	for slot, v := range layout {
		names[slot] = q.Vertices[v].Name
	}
	r := &exec.Runner{Graph: db.g, DisableCache: qo.DisableCache}
	stopped := false
	_, err = r.Run(pw.p, func(t []graph.VertexID) {
		if stopped {
			return
		}
		m := make(map[string]uint32, len(t))
		for slot, v := range t {
			m[names[slot]] = uint32(v)
		}
		if !fn(m) {
			stopped = true
		}
	})
	return err
}

// Explain returns the optimizer's plan for the pattern without running it.
func (db *DB) Explain(pattern string) (Stats, error) {
	_, pw, err := db.plan(pattern, QueryOptions{})
	if err != nil {
		return Stats{}, err
	}
	return Stats{PlanKind: pw.p.Kind(), Plan: pw.p.Describe()}, nil
}

// Analyze runs the pattern and returns Stats whose Plan field carries the
// per-operator breakdown (tuples out, i-cost, cache hits, probe and build
// counts) — EXPLAIN ANALYZE for subgraph plans. Single-threaded.
func (db *DB) Analyze(pattern string) (Stats, error) {
	_, pw, err := db.plan(pattern, QueryOptions{})
	if err != nil {
		return Stats{}, err
	}
	r := &exec.Runner{Graph: db.g}
	ops, prof, err := r.Analyze(pw.p)
	if err != nil {
		return Stats{}, err
	}
	st := statsFrom(pw, prof, prof.Matches)
	st.Plan = ops.Describe()
	return st, nil
}

// EstimateCardinality returns the catalogue's estimate of the pattern's
// match count (Section 5.2).
func (db *DB) EstimateCardinality(pattern string) (float64, error) {
	q, err := query.ParseAny(pattern)
	if err != nil {
		return 0, err
	}
	return db.cat.EstimateCardinality(q), nil
}

// GraphStats summarises the stored graph (degree skew and clustering — the
// structural knobs that drive plan choice in the paper).
func (db *DB) GraphStats() graph.Stats {
	return db.g.ComputeStats(2000, rand.New(rand.NewSource(7)))
}

// planWrap keeps internal plan types out of exported signatures.
type planWrap struct{ p *plan.Plan }

func statsFrom(pw *planWrap, prof exec.Profile, n int64) Stats {
	return Stats{
		Matches:      n,
		Intermediate: prof.Intermediate,
		ICost:        prof.ICost,
		CacheHits:    prof.CacheHits,
		PlanKind:     pw.p.Kind(),
		Plan:         pw.p.Describe(),
	}
}
