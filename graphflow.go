// Package graphflow is a Go reimplementation of the subgraph-query
// optimizer of Mhedhbi & Salihoglu, "Optimizing Subgraph Queries by
// Combining Binary and Worst-Case Optimal Joins" (PVLDB 12(11), 2019),
// together with the Graphflow-style evaluation engine it plans for.
//
// A DB wraps an immutable directed, labelled graph plus a subgraph
// catalogue (the optimizer's statistics). Queries are textual patterns:
//
//	db, _ := graphflow.NewFromDataset("Epinions", 1, nil)
//	n, _ := db.Count("a->b, b->c, a->c", nil) // asymmetric triangles
//
// The optimizer chooses among worst-case-optimal (multiway-intersection)
// plans, binary-join plans and hybrids, using the intersection-cost model
// of the paper; execution supports parallel workers, an intersection
// cache, and adaptive per-tuple re-selection of query vertex orderings.
//
// Queries follow a compile-once/run-many lifecycle. Prepare parses,
// canonicalizes, optimizes and compiles a pattern into a PreparedQuery
// that any number of goroutines may execute concurrently. The one-shot
// entry points (Count, Match, Analyze, ...) go through the same machinery
// backed by a concurrent plan cache keyed by the pattern's canonical
// form, so repeated ad-hoc queries skip re-optimization automatically.
package graphflow

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"sync/atomic"

	"graphflow/internal/adaptive"
	"graphflow/internal/cache"
	"graphflow/internal/catalogue"
	"graphflow/internal/datagen"
	"graphflow/internal/exec"
	"graphflow/internal/graph"
	"graphflow/internal/optimizer"
	"graphflow/internal/plan"
	"graphflow/internal/query"
)

// Options configures DB construction.
type Options struct {
	// CatalogueH is the largest subquery size sampled into the catalogue
	// (paper Section 5.1); default 3.
	CatalogueH int
	// CatalogueZ is the number of edges sampled per catalogue entry chain;
	// default 1000.
	CatalogueZ int
	// Seed drives catalogue sampling; default 1.
	Seed int64
	// CalibrateJoinWeights runs the empirical w1/w2 calibration of Section
	// 4.2 on this machine instead of using the defaults.
	CalibrateJoinWeights bool
	// PlanCacheSize bounds the DB's compiled-plan cache (entries, shared
	// across all goroutines). 0 takes the default of 256; a negative value
	// disables plan caching entirely.
	PlanCacheSize int
}

func (o *Options) withDefaults() Options {
	var out Options
	if o != nil {
		out = *o
	}
	if out.CatalogueH == 0 {
		out.CatalogueH = 3
	}
	if out.CatalogueZ == 0 {
		out.CatalogueZ = 1000
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	if out.PlanCacheSize == 0 {
		out.PlanCacheSize = 256
	}
	return out
}

// DB is an immutable graph database instance: graph, catalogue,
// calibrated cost-model weights, and the compiled-plan cache. A DB is
// safe for concurrent use by multiple goroutines.
type DB struct {
	g      *graph.Graph
	cat    *catalogue.Catalogue
	w1, w2 float64
	// plans caches compiled plans keyed by canonical query form (nil when
	// caching is disabled).
	plans *cache.Cache[*preparedPlan]
}

// QueryOptions tunes one query evaluation.
type QueryOptions struct {
	// Context, when non-nil, bounds the evaluation: execution stops
	// promptly once the context is cancelled or its deadline passes, and
	// the context's error (context.Canceled or context.DeadlineExceeded)
	// is returned. Workers poll the context with an amortized check every
	// few thousand produced tuples, so cancellation latency is bounded
	// even for worst-case-optimal plans stuck in a huge intersection
	// cascade. The CountCtx/MatchCtx entry points set this field.
	Context context.Context
	// Workers parallelises execution (paper Section 7); default 1.
	Workers int
	// Adaptive re-picks query vertex orderings per tuple (Section 6).
	Adaptive bool
	// WCOOnly restricts planning to worst-case-optimal plans. Ignored by
	// PreparedQuery methods: plan choice is fixed at Prepare time (use
	// PrepareWCO for a WCO-restricted prepared query).
	WCOOnly bool
	// DisableCache turns off the intersection cache.
	DisableCache bool
	// Limit stops after this many matches (0 = all). Parallel execution
	// honors the limit: with Workers > 1 the count still stops at Limit,
	// but which matches are produced first is nondeterministic.
	Limit int64
	// Distinct switches from the paper's join (homomorphism) semantics to
	// subgraph-isomorphism semantics: every query vertex must bind a
	// distinct data vertex. Implemented as a post-filter.
	Distinct bool
	// SkipPlanCache bypasses the DB's compiled-plan cache for this call,
	// forcing a fresh parse/optimize/compile. Used to measure planning
	// overhead; leave false otherwise.
	SkipPlanCache bool
}

// Stats reports what one evaluation did.
type Stats struct {
	Matches      int64
	Intermediate int64
	ICost        int64
	CacheHits    int64
	PlanKind     string // "wco", "bj" or "hybrid"
	Plan         string // operator tree, one operator per line
}

// PlanCacheStats is a snapshot of the DB's compiled-plan cache counters.
type PlanCacheStats struct {
	// Hits and Misses count cache lookups by Count/Match/Prepare/etc.
	Hits, Misses int64
	// Evictions counts plans dropped to respect the size bound.
	Evictions int64
	// Entries is the number of currently cached plans.
	Entries int
}

// newDB builds the catalogue and weights for a finished graph.
func newDB(g *graph.Graph, opts Options) *DB {
	db := &DB{
		g:  g,
		w1: optimizer.DefaultW1,
		w2: optimizer.DefaultW2,
	}
	if opts.PlanCacheSize > 0 {
		db.plans = cache.New[*preparedPlan](opts.PlanCacheSize)
	}
	db.cat = catalogue.Build(g, catalogue.Config{H: opts.CatalogueH, Z: opts.CatalogueZ, Seed: opts.Seed})
	if opts.CalibrateJoinWeights {
		db.w1, db.w2 = optimizer.Calibrate(g)
	}
	return db
}

// NewFromEdgeList builds a DB from the textual edge-list format of
// internal/graph (a superset of SNAP's: optional "v id label" lines and an
// optional third edge-label column).
func NewFromEdgeList(r io.Reader, opts *Options) (*DB, error) {
	g, err := graph.LoadEdgeList(r)
	if err != nil {
		return nil, err
	}
	return newDB(g, opts.withDefaults()), nil
}

// NewFromDataset builds a DB over one of the built-in synthetic datasets
// mirroring the paper's Table 8: "Amazon", "Epinions", "LiveJournal",
// "Twitter", "BerkStan", "Google" or "Human". scale multiplies the default
// size.
func NewFromDataset(name string, scale int, opts *Options) (*DB, error) {
	g := datagen.ByName(name, scale)
	if g == nil {
		return nil, fmt.Errorf("graphflow: unknown dataset %q (have %v)", name, datagen.Names())
	}
	return newDB(g, opts.withDefaults()), nil
}

// Builder accumulates a graph edge by edge before opening a DB.
type Builder struct {
	b *graph.Builder
}

// NewBuilder starts a graph with numVertices vertices (labelled 0).
func NewBuilder(numVertices int) *Builder {
	return &Builder{b: graph.NewBuilder(numVertices)}
}

// AddVertex appends a labelled vertex and returns its ID.
func (b *Builder) AddVertex(label uint16) uint32 {
	return uint32(b.b.AddVertex(graph.Label(label)))
}

// SetVertexLabel labels an existing vertex.
func (b *Builder) SetVertexLabel(v uint32, label uint16) {
	b.b.SetVertexLabel(graph.VertexID(v), graph.Label(label))
}

// AddEdge records a directed labelled edge.
func (b *Builder) AddEdge(src, dst uint32, label uint16) {
	b.b.AddEdge(graph.VertexID(src), graph.VertexID(dst), graph.Label(label))
}

// Open freezes the graph and builds the DB.
func (b *Builder) Open(opts *Options) (*DB, error) {
	g, err := b.b.Build()
	if err != nil {
		return nil, err
	}
	return newDB(g, opts.withDefaults()), nil
}

// NumVertices returns the graph's vertex count.
func (db *DB) NumVertices() int { return db.g.NumVertices() }

// NumEdges returns the graph's edge count.
func (db *DB) NumEdges() int { return db.g.NumEdges() }

// preparedPlan is the shareable, immutable compiled artifact cached per
// canonical query form: the canonical query, its optimized plan, and the
// plan lowered into an executable CompiledPlan. The plan is built over
// the canonical query, so one cached entry serves every isomorphic
// spelling of a pattern; per-spelling state (the original vertex names)
// lives in PreparedQuery instead.
type preparedPlan struct {
	canon    *query.Graph
	plan     *plan.Plan
	compiled *exec.CompiledPlan
}

// preparedFor returns the compiled plan for q (from the cache when
// possible) plus perm, mapping q's vertex indices to canonical indices.
func (db *DB) preparedFor(q *query.Graph, wcoOnly, skipCache bool) (*preparedPlan, []int, error) {
	canon, perm := q.Canonical()
	var key string
	if db.plans != nil && !skipCache {
		key = canon.Key()
		if wcoOnly {
			// WCO-restricted planning yields different plans; keep the
			// spaces apart in the cache.
			key += "|wco"
		}
		if pp, ok := db.plans.Get(key); ok {
			return pp, perm, nil
		}
	}
	p, err := optimizer.Optimize(canon, optimizer.Options{
		Catalogue: db.cat,
		W1:        db.w1,
		W2:        db.w2,
		WCOOnly:   wcoOnly,
	})
	if err != nil {
		return nil, nil, err
	}
	cp, err := exec.Compile(db.g, p)
	if err != nil {
		return nil, nil, err
	}
	pp := &preparedPlan{canon: canon, plan: p, compiled: cp}
	if key != "" {
		db.plans.Put(key, pp)
	}
	return pp, perm, nil
}

// PlanCacheStats reports the DB's compiled-plan cache effectiveness; all
// zeros when caching is disabled.
func (db *DB) PlanCacheStats() PlanCacheStats {
	if db.plans == nil {
		return PlanCacheStats{}
	}
	st := db.plans.Stats()
	return PlanCacheStats{Hits: st.Hits, Misses: st.Misses, Evictions: st.Evictions, Entries: st.Entries}
}

// PreparedQuery is a pattern compiled once — parsed, canonicalized,
// optimized and lowered — and runnable many times. All methods are safe
// for concurrent use from multiple goroutines: the compiled plan is
// immutable and every run carries its own mutable state.
type PreparedQuery struct {
	db *DB
	pp *preparedPlan
	// names maps canonical vertex index to the pattern's original vertex
	// name, for Match output.
	names []string
}

// Prepare compiles the pattern for repeated execution. Planning uses the
// full WCO/binary/hybrid plan space; per-run knobs (Workers, Limit,
// Distinct, DisableCache, Adaptive) are supplied to each Count/Match
// call. The compiled plan is shared with the DB's plan cache, so ad-hoc
// Count calls with an isomorphic pattern reuse it too.
func (db *DB) Prepare(pattern string) (*PreparedQuery, error) {
	return db.prepare(pattern, false, false)
}

// PrepareWCO is Prepare with planning restricted to worst-case-optimal
// plans (QueryOptions.WCOOnly fixed at compile time).
func (db *DB) PrepareWCO(pattern string) (*PreparedQuery, error) {
	return db.prepare(pattern, true, false)
}

// prepare is the single parse → canonicalize → plan → compile path every
// query entry point goes through.
func (db *DB) prepare(pattern string, wcoOnly, skipCache bool) (*PreparedQuery, error) {
	q, err := query.ParseAny(pattern)
	if err != nil {
		return nil, err
	}
	pp, perm, err := db.preparedFor(q, wcoOnly, skipCache)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(q.Vertices))
	for orig, canon := range perm {
		names[canon] = q.Vertices[orig].Name
	}
	return &PreparedQuery{db: db, pp: pp, names: names}, nil
}

// Count evaluates the prepared query and returns the number of matches.
// opts may be nil. Safe for concurrent use.
func (pq *PreparedQuery) Count(opts *QueryOptions) (int64, error) {
	n, _, err := pq.CountStats(opts)
	return n, err
}

// CountStats is Count plus the execution statistics and plan description.
// On context cancellation the partial count and statistics observed so
// far are returned alongside the error.
func (pq *PreparedQuery) CountStats(opts *QueryOptions) (int64, Stats, error) {
	var qo QueryOptions
	if opts != nil {
		qo = *opts
	}
	n, prof, err := pq.db.runCount(pq.pp, qo)
	return n, statsFrom(pq.pp.plan, prof, n), err
}

// Match evaluates the prepared query, invoking fn with each match as a
// map from vertex name to data vertex ID; fn returning false stops
// enumeration promptly. Distinct and Limit apply as in Count. Workers
// parallelises enumeration — fn is always serialised (never called
// concurrently) and a Limit is still honored exactly, but match order is
// nondeterministic across runs when Workers > 1.
func (pq *PreparedQuery) Match(fn func(map[string]uint32) bool, opts *QueryOptions) error {
	var qo QueryOptions
	if opts != nil {
		qo = *opts
	}
	layout := pq.pp.plan.Root.Out()
	names := make([]string, len(layout))
	for slot, v := range layout {
		names[slot] = pq.names[v]
	}
	cfg := exec.RunConfig{Workers: qo.Workers, DisableCache: qo.DisableCache}
	// delivered needs no synchronisation: RunUntil serialises emit.
	var delivered int64
	_, err := pq.pp.compiled.RunUntilCtx(qo.context(), cfg, func(t []graph.VertexID) bool {
		if qo.Distinct && !allDistinct(t) {
			return true
		}
		m := make(map[string]uint32, len(t))
		for slot, v := range t {
			m[names[slot]] = uint32(v)
		}
		if !fn(m) {
			return false
		}
		delivered++
		return qo.Limit <= 0 || delivered < qo.Limit
	})
	return err
}

// CountCtx is Count bounded by ctx: evaluation stops promptly once ctx
// is cancelled or its deadline passes, returning ctx's error. Equivalent
// to setting QueryOptions.Context.
func (pq *PreparedQuery) CountCtx(ctx context.Context, opts *QueryOptions) (int64, error) {
	return pq.Count(withContext(ctx, opts))
}

// MatchCtx is Match bounded by ctx (see CountCtx).
func (pq *PreparedQuery) MatchCtx(ctx context.Context, fn func(map[string]uint32) bool, opts *QueryOptions) error {
	return pq.Match(fn, withContext(ctx, opts))
}

// Stats returns the prepared plan's kind and operator tree without
// running it (the Explain view).
func (pq *PreparedQuery) Stats() Stats {
	return Stats{PlanKind: pq.pp.plan.Kind(), Plan: pq.pp.plan.Describe()}
}

// PlanKind returns the prepared plan's kind ("wco", "bj" or "hybrid")
// without rendering the operator tree — cheap enough for per-request
// serving paths.
func (pq *PreparedQuery) PlanKind() string { return pq.pp.plan.Kind() }

// runCount executes a compiled plan under the given options.
func (db *DB) runCount(pp *preparedPlan, qo QueryOptions) (int64, exec.Profile, error) {
	ctx := qo.context()
	cfg := exec.RunConfig{Workers: qo.Workers, DisableCache: qo.DisableCache}
	switch {
	case qo.Distinct:
		if qo.Limit > 0 {
			// RunUntil serialises emit, so the counter needs no atomics and
			// the limit is exact.
			var count int64
			prof, err := pp.compiled.RunUntilCtx(ctx, cfg, func(t []graph.VertexID) bool {
				if !allDistinct(t) {
					return true
				}
				count++
				return count < qo.Limit
			})
			return count, prof, err
		}
		// RunConcurrent calls emit from every worker goroutine without
		// serialising, so the count must be an atomic.
		var count atomic.Int64
		prof, err := pp.compiled.RunConcurrentCtx(ctx, cfg, func(t []graph.VertexID) {
			if allDistinct(t) {
				count.Add(1)
			}
		})
		return count.Load(), prof, err
	case qo.Adaptive:
		ev := &adaptive.Evaluator{Graph: db.g, Catalogue: db.cat, Config: adaptive.Config{Workers: qo.Workers}}
		if qo.Limit > 0 {
			// The adaptive evaluator has no native early stop; reaching the
			// limit cancels a child context, which its amortized polling
			// already honors. The self-inflicted Canceled is success —
			// cancellation from the caller's own ctx still propagates.
			lctx, stop := context.WithCancel(ctx)
			defer stop()
			var count int64
			prof, err := ev.RunCtx(lctx, pp.plan, func([]graph.VertexID) {
				if count < qo.Limit {
					count++
					if count == qo.Limit {
						stop()
					}
				}
			})
			if err != nil && !(errors.Is(err, context.Canceled) && ctx.Err() == nil) {
				return count, prof, err
			}
			return count, prof, nil
		}
		return ev.CountCtx(ctx, pp.plan)
	case qo.Limit > 0:
		return pp.compiled.CountUpToCtx(ctx, cfg, qo.Limit)
	default:
		// Pure counting can skip enumerating the last extension's Cartesian
		// product (factorized counting); the count is exact.
		cfg.FastCount = true
		return pp.compiled.CountCtx(ctx, cfg)
	}
}

// context returns the evaluation-bounding context (Background when the
// caller supplied none).
func (qo *QueryOptions) context() context.Context {
	if qo.Context != nil {
		return qo.Context
	}
	return context.Background()
}

// withContext copies opts (nil allowed) and installs ctx as the
// evaluation-bounding context.
func withContext(ctx context.Context, opts *QueryOptions) *QueryOptions {
	var qo QueryOptions
	if opts != nil {
		qo = *opts
	}
	qo.Context = ctx
	return &qo
}

// Count evaluates the pattern and returns the number of matches. opts may
// be nil. Repeated calls with isomorphic patterns hit the plan cache and
// skip re-optimization.
func (db *DB) Count(pattern string, opts *QueryOptions) (int64, error) {
	n, _, err := db.CountStats(pattern, opts)
	return n, err
}

// CountCtx is Count bounded by ctx: evaluation stops promptly once ctx
// is cancelled or its deadline passes, returning ctx's error. Equivalent
// to setting QueryOptions.Context.
func (db *DB) CountCtx(ctx context.Context, pattern string, opts *QueryOptions) (int64, error) {
	return db.Count(pattern, withContext(ctx, opts))
}

// CountStats is Count plus the execution statistics and plan description.
// On context cancellation the partial count and statistics observed so
// far are returned alongside the error.
func (db *DB) CountStats(pattern string, opts *QueryOptions) (int64, Stats, error) {
	var qo QueryOptions
	if opts != nil {
		qo = *opts
	}
	pq, err := db.prepare(pattern, qo.WCOOnly, qo.SkipPlanCache)
	if err != nil {
		return 0, Stats{}, err
	}
	n, prof, err := db.runCount(pq.pp, qo)
	return n, statsFrom(pq.pp.plan, prof, n), err
}

// allDistinct reports whether the tuple binds pairwise-distinct data
// vertices (tuples are short: quadratic scan beats allocation).
func allDistinct(t []graph.VertexID) bool {
	for i := 1; i < len(t); i++ {
		for j := 0; j < i; j++ {
			if t[i] == t[j] {
				return false
			}
		}
	}
	return true
}

// Match evaluates the pattern, invoking fn with each match as a map from
// vertex name to data vertex ID; fn returning false stops enumeration
// promptly (the runner halts rather than draining the full result set).
// Distinct, Limit and Workers apply as in PreparedQuery.Match.
func (db *DB) Match(pattern string, fn func(map[string]uint32) bool, opts *QueryOptions) error {
	var qo QueryOptions
	if opts != nil {
		qo = *opts
	}
	pq, err := db.prepare(pattern, qo.WCOOnly, qo.SkipPlanCache)
	if err != nil {
		return err
	}
	return pq.Match(fn, opts)
}

// MatchCtx is Match bounded by ctx (see CountCtx).
func (db *DB) MatchCtx(ctx context.Context, pattern string, fn func(map[string]uint32) bool, opts *QueryOptions) error {
	return db.Match(pattern, fn, withContext(ctx, opts))
}

// Explain returns the optimizer's plan for the pattern without running it.
func (db *DB) Explain(pattern string) (Stats, error) {
	pq, err := db.prepare(pattern, false, false)
	if err != nil {
		return Stats{}, err
	}
	return pq.Stats(), nil
}

// Analyze runs the pattern and returns Stats whose Plan field carries the
// per-operator breakdown (tuples out, i-cost, cache hits, probe and build
// counts) — EXPLAIN ANALYZE for subgraph plans. Single-threaded.
func (db *DB) Analyze(pattern string) (Stats, error) {
	pq, err := db.prepare(pattern, false, false)
	if err != nil {
		return Stats{}, err
	}
	ops, prof, err := pq.pp.compiled.Analyze(exec.RunConfig{})
	if err != nil {
		return Stats{}, err
	}
	st := statsFrom(pq.pp.plan, prof, prof.Matches)
	st.Plan = ops.Describe()
	return st, nil
}

// EstimateCardinality returns the catalogue's estimate of the pattern's
// match count (Section 5.2).
func (db *DB) EstimateCardinality(pattern string) (float64, error) {
	q, err := query.ParseAny(pattern)
	if err != nil {
		return 0, err
	}
	return db.cat.EstimateCardinality(q), nil
}

// GraphStats summarises the stored graph (degree skew and clustering — the
// structural knobs that drive plan choice in the paper).
func (db *DB) GraphStats() graph.Stats {
	return db.g.ComputeStats(2000, rand.New(rand.NewSource(7)))
}

func statsFrom(p *plan.Plan, prof exec.Profile, n int64) Stats {
	return Stats{
		Matches:      n,
		Intermediate: prof.Intermediate,
		ICost:        prof.ICost,
		CacheHits:    prof.CacheHits,
		PlanKind:     p.Kind(),
		Plan:         p.Describe(),
	}
}
