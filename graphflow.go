// Package graphflow is a Go reimplementation of the subgraph-query
// optimizer of Mhedhbi & Salihoglu, "Optimizing Subgraph Queries by
// Combining Binary and Worst-Case Optimal Joins" (PVLDB 12(11), 2019),
// together with the Graphflow-style evaluation engine it plans for.
//
// A DB wraps a versioned directed, labelled graph — an immutable CSR
// base plus a mutable delta overlay (internal/live) — and a subgraph
// catalogue (the optimizer's statistics). Queries are textual patterns:
//
//	db, _ := graphflow.NewFromDataset("Epinions", 1, nil)
//	n, _ := db.Count("a->b, b->c, a->c", nil) // asymmetric triangles
//
// The optimizer chooses among worst-case-optimal (multiway-intersection)
// plans, binary-join plans and hybrids, using the intersection-cost model
// of the paper; execution supports parallel workers, an intersection
// cache, and adaptive per-tuple re-selection of query vertex orderings.
//
// Queries follow a compile-once/run-many lifecycle. Prepare parses,
// canonicalizes, optimizes and compiles a pattern into a PreparedQuery
// that any number of goroutines may execute concurrently. The one-shot
// entry points (Count, Match, Analyze, ...) go through the same machinery
// backed by a concurrent plan cache keyed by the pattern's canonical
// form, so repeated ad-hoc queries skip re-optimization automatically.
//
// The graph is mutable at runtime: AddVertex/AddEdge/DeleteEdge/Apply
// publish new epochs with snapshot isolation (queries already running
// never observe a later batch), plan-cache keys are versioned by epoch,
// and a background compactor periodically folds the delta overlay into a
// fresh CSR base.
package graphflow

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"graphflow/internal/adaptive"
	"graphflow/internal/cache"
	"graphflow/internal/catalogue"
	"graphflow/internal/datagen"
	"graphflow/internal/exec"
	"graphflow/internal/faultinject"
	"graphflow/internal/graph"
	"graphflow/internal/live"
	"graphflow/internal/metrics"
	"graphflow/internal/optimizer"
	"graphflow/internal/plan"
	"graphflow/internal/query"
	"graphflow/internal/resource"
	"graphflow/internal/wal"
)

// Options configures DB construction.
type Options struct {
	// CatalogueH is the largest subquery size sampled into the catalogue
	// (paper Section 5.1); default 3.
	CatalogueH int
	// CatalogueZ is the number of edges sampled per catalogue entry chain;
	// default 1000.
	CatalogueZ int
	// Seed drives catalogue sampling; default 1.
	Seed int64
	// CalibrateJoinWeights runs the empirical w1/w2 calibration of Section
	// 4.2 on this machine instead of using the defaults.
	CalibrateJoinWeights bool
	// PlanCacheSize bounds the DB's compiled-plan cache (entries, shared
	// across all goroutines). 0 takes the default of 256; a negative value
	// disables plan caching entirely.
	PlanCacheSize int
	// CompactThreshold is the number of live mutations accumulated in the
	// delta overlay before the background compactor folds them into a
	// fresh CSR base. 0 takes the live store's default (16384); a negative
	// value disables automatic compaction (DB.Compact still works).
	CompactThreshold int
	// DataDir enables durability: every mutation batch is appended to a
	// CRC32-checksummed write-ahead log in this directory before its
	// epoch is published, compaction writes an atomic full-graph
	// checkpoint and prunes the log, and opening a DB over a non-empty
	// directory recovers the durable state (newest checkpoint + WAL tail,
	// tolerating a torn final record). The caller must supply the same
	// base graph across restarts — until the first checkpoint lands, the
	// boot-time base is the recovery root. Empty keeps the store
	// in-memory only (mutations lost on exit).
	DataDir string
	// Fsync selects the WAL durability policy when DataDir is set:
	// "batch" (default — fsync before every acknowledged batch),
	// "interval" (background fsync every FsyncInterval), or "off" (the
	// OS page cache decides).
	Fsync string
	// FsyncInterval is the period of the "interval" policy; 0 takes the
	// WAL default (100ms).
	FsyncInterval time.Duration
	// HubDegreeThreshold is the adjacency-partition size at which the
	// store materialises a uint64 bitset index alongside the sorted run,
	// enabling the degree-adaptive intersection kernels (bitset probe and
	// word-AND) on hub vertices. 0 takes the graph package's default
	// (256); a negative value disables bitset indexing entirely (every
	// intersection runs on the sorted merge/gallop kernels). Each indexed
	// partition costs up to ceil(V/8) bytes — less when its neighbour IDs
	// cluster, since bitsets are range-compressed to the partition's ID
	// span; LiveStats.BitsetIndexBytes reports the actual total.
	HubDegreeThreshold int
	// MemBudgetBytes is the default per-query memory ceiling: every
	// evaluation meters its major allocators (hash-join build tables,
	// worker batch scratch, extension-set caches) and aborts with an
	// error wrapping resource.ErrBudgetExceeded once it reserves more.
	// 0 disables the per-query ceiling (queries still draw on the
	// global pool when MemGlobalBytes is set). QueryOptions.
	// MemBudgetBytes can tighten — never widen — this per query.
	MemBudgetBytes int64
	// MemGlobalBytes is the process-wide ceiling apportioned across all
	// in-flight queries first-come-first-served: a query whose next
	// reservation would cross it aborts even with per-query headroom
	// left, so one DB never OOMs the process under concurrency. 0
	// disables the global pool.
	MemGlobalBytes int64
}

func (o *Options) withDefaults() Options {
	var out Options
	if o != nil {
		out = *o
	}
	if out.CatalogueH == 0 {
		out.CatalogueH = 3
	}
	if out.CatalogueZ == 0 {
		out.CatalogueZ = 1000
	}
	if out.Seed == 0 {
		out.Seed = 1
	}
	if out.PlanCacheSize == 0 {
		out.PlanCacheSize = 256
	}
	return out
}

// DB is a graph database instance: the live versioned store (immutable
// CSR base plus mutable delta overlay), per-epoch catalogue statistics,
// calibrated cost-model weights, and the compiled-plan cache. A DB is
// safe for concurrent use by multiple goroutines: queries read an
// immutable epoch snapshot, and mutations (AddVertex/AddEdge/DeleteEdge/
// Apply) publish new epochs without disturbing in-flight queries.
type DB struct {
	store  *live.DB
	opts   Options
	w1, w2 float64
	// plans caches compiled plans keyed by canonical query form plus the
	// epoch it was planned at (nil when caching is disabled), so an epoch
	// bump naturally invalidates every cached plan: post-mutation lookups
	// miss and re-plan against fresh statistics.
	plans *cache.Cache[*preparedPlan]

	// cat is the newest epoch's catalogue, rebuilt lazily on first use
	// after an epoch bump so stale cost estimates never leak across
	// epochs.
	catMu    sync.Mutex
	cat      *catalogue.Catalogue
	catEpoch uint64

	// gov is the process-wide memory governor (nil when MemGlobalBytes
	// is 0 and no per-query ceiling is set): every query's budget draws
	// on it, and Governor reports the pool for metrics.
	gov *resource.Governor
}

// Governor exposes the DB's memory governor (nil when memory
// governance is disabled) for observability surfaces.
func (db *DB) Governor() *resource.Governor { return db.gov }

// QueryOptions tunes one query evaluation.
type QueryOptions struct {
	// Context, when non-nil, bounds the evaluation: execution stops
	// promptly once the context is cancelled or its deadline passes, and
	// the context's error (context.Canceled or context.DeadlineExceeded)
	// is returned. Workers poll the context with an amortized check every
	// few thousand produced tuples, so cancellation latency is bounded
	// even for worst-case-optimal plans stuck in a huge intersection
	// cascade. The CountCtx/MatchCtx entry points set this field.
	Context context.Context
	// Workers parallelises execution (paper Section 7); default 1.
	Workers int
	// Adaptive re-picks query vertex orderings per tuple (Section 6).
	Adaptive bool
	// WCOOnly restricts planning to worst-case-optimal plans. Ignored by
	// PreparedQuery methods: plan choice is fixed at Prepare time (use
	// PrepareWCO for a WCO-restricted prepared query).
	WCOOnly bool
	// DisableCache turns off the intersection cache.
	DisableCache bool
	// Limit stops after this many matches (0 = all). Parallel execution
	// honors the limit: with Workers > 1 the count still stops at Limit,
	// but which matches are produced first is nondeterministic.
	Limit int64
	// Distinct switches from the paper's join (homomorphism) semantics to
	// subgraph-isomorphism semantics: every query vertex must bind a
	// distinct data vertex. Implemented as a post-filter.
	Distinct bool
	// SkipPlanCache bypasses the DB's compiled-plan cache for this call,
	// forcing a fresh parse/optimize/compile. Used to measure planning
	// overhead; leave false otherwise.
	SkipPlanCache bool
	// BatchSize is the row capacity of the columnar tuple batches the
	// vectorized executor pushes through its pipelines. 0 picks a
	// plan-adaptive capacity (scaled down for shallow plans and small
	// estimated results; explicit values stay authoritative). A negative
	// value selects the legacy tuple-at-a-time engine — kept as the
	// differential-testing oracle; production queries should leave this
	// at 0.
	BatchSize int
	// DisableFactorization turns off the factorized execution tier for
	// this query. By default, plans ending in a star-shaped suffix
	// (trailing extensions whose targets are pairwise non-adjacent leaves)
	// represent results as prefix × set₁ × … × setₖ: counts multiply set
	// cardinalities, limits charge against the product, and enumeration
	// lazily unfolds identical tuples. Distinct queries and the
	// tuple-at-a-time oracle (BatchSize < 0) always run fully enumerated,
	// regardless of this knob.
	DisableFactorization bool
	// MemBudgetBytes tightens this query's memory ceiling below the
	// DB-wide Options.MemBudgetBytes default. The effective ceiling is
	// the smaller of the two non-zero values — a request can never widen
	// the operator's limit. 0 keeps the DB default.
	MemBudgetBytes int64
	// Faults installs a fault-injection schedule for this evaluation
	// (chaos testing only; leave nil in production).
	Faults *faultinject.Injector
}

// Stats reports what one evaluation did.
type Stats struct {
	Matches      int64
	Intermediate int64
	ICost        int64
	CacheHits    int64
	// KernelMerge, KernelGallop, KernelBitsetProbe and KernelBitsetAnd
	// count intersection-kernel dispatches by kind: how often the
	// degree-adaptive engine merged two sorted runs, galloped a short run
	// into a long one, probed a hub's bitset index, or word-ANDed two
	// bitsets. ICost stays the representation-oblivious Equation 1
	// metric, so comparing the two shows the work the bitset kernels
	// short-circuited.
	KernelMerge       int64
	KernelGallop      int64
	KernelBitsetProbe int64
	KernelBitsetAnd   int64
	// ScanBatches, ExtendBatches and ProbeBatches count the columnar
	// batches each stage kind of the vectorized engine dispatched (all
	// zero under the tuple-at-a-time oracle, BatchSize < 0).
	ScanBatches   int64
	ExtendBatches int64
	ProbeBatches  int64
	// FactorizedPrefixes counts prefix tuples evaluated by the factorized
	// execution tier (one extension set per star-suffix leaf each);
	// FactorizedAvoided counts result tuples that were counted — or
	// charged against a Limit — directly on the factorized form without
	// being materialized. Both zero when factorization did not apply.
	FactorizedPrefixes int64
	FactorizedAvoided  int64
	// Per-stage wall-time attribution of the vectorized engine in
	// nanoseconds: scan (adjacency reads and batch fills), E/I intersect
	// fan-out, hash-probe lookups, the factorized star-suffix tail, the
	// hash-join build-side insert sink, and the root emit sink. Under
	// parallel runs the numbers sum across workers (busy time per stage,
	// not elapsed wall clock); all zero under the tuple-at-a-time oracle.
	StageScanNanos       int64
	StageExtendNanos     int64
	StageProbeNanos      int64
	StageFactorizedNanos int64
	StageBuildNanos      int64
	StageEmitNanos       int64
	PlanKind             string // "wco", "bj" or "hybrid"
	Plan                 string // operator tree, one operator per line
}

// PlanCacheStats is a snapshot of the DB's compiled-plan cache counters.
type PlanCacheStats struct {
	// Hits and Misses count cache lookups by Count/Match/Prepare/etc.
	Hits, Misses int64
	// Evictions counts plans dropped to respect the size bound.
	Evictions int64
	// Entries is the number of currently cached plans.
	Entries int
}

// newDB builds the catalogue and weights for a finished graph.
func newDB(g *graph.Graph, opts Options) (*DB, error) {
	db := &DB{
		opts: opts,
		w1:   optimizer.DefaultW1,
		w2:   optimizer.DefaultW2,
		gov:  resource.NewGovernor(opts.MemGlobalBytes),
	}
	if opts.HubDegreeThreshold != 0 && opts.HubDegreeThreshold != g.HubThreshold() {
		// Graphs from paths that could not thread the knob into their
		// builder (edge-list loads, datasets) arrive indexed at the
		// default threshold; re-index once before the store is shared. A
		// graph already indexed at the requested threshold (Builder.Open
		// threads the knob and skips this entirely) is left alone.
		g.RebuildHubIndex(opts.HubDegreeThreshold)
	}
	sync, err := wal.ParseSyncPolicy(opts.Fsync)
	if err != nil {
		return nil, err
	}
	db.store, err = live.Open(g, live.Config{
		CompactThreshold: opts.CompactThreshold,
		HubThreshold:     opts.HubDegreeThreshold,
		Dir:              opts.DataDir,
		Sync:             sync,
		SyncInterval:     opts.FsyncInterval,
		// Epoch-versioned keys mean entries for older epochs can never be
		// looked up again; dropping them eagerly releases the snapshots
		// (and pre-compaction CSR bases) they pin instead of waiting for
		// LRU aging. In-flight queries are unaffected — they hold their
		// own preparedPlan reference.
		OnEpoch: func(*live.Snapshot) {
			if db.plans != nil {
				db.plans.Clear()
			}
		},
	})
	if err != nil {
		return nil, err
	}
	if opts.PlanCacheSize > 0 {
		db.plans = cache.New[*preparedPlan](opts.PlanCacheSize)
	}
	// The catalogue samples the recovered snapshot, not the raw base:
	// after WAL replay the two differ.
	db.cat = catalogue.Build(db.store.Snapshot(), catalogue.Config{H: opts.CatalogueH, Z: opts.CatalogueZ, Seed: opts.Seed})
	db.catEpoch = db.store.Epoch()
	if opts.CalibrateJoinWeights {
		db.w1, db.w2 = optimizer.Calibrate(g)
	}
	return db, nil
}

// Close releases the DB's durable resources: it waits for background
// compaction and syncs and closes the write-ahead log, so a graceful
// shutdown never relies on the fsync policy alone. Mutations fail after
// Close; in-flight queries finish on their snapshots. A nil error is
// returned for an in-memory DB.
func (db *DB) Close() error { return db.store.Close() }

// catalogueFor returns the catalogue matching snap's epoch, rebuilding
// it from the snapshot when the epoch has moved since the last build.
// The newest epoch's catalogue is cached; requests for older snapshots
// (a query racing a mutation) get a correct one-off build. The build
// itself runs outside catMu so one rebuild never stalls every other
// query's planning — racing planners may build the same epoch twice,
// trading bounded duplicate work for zero lock-held sampling.
func (db *DB) catalogueFor(snap *live.Snapshot) *catalogue.Catalogue {
	db.catMu.Lock()
	if db.cat != nil && db.catEpoch == snap.Epoch() {
		cat := db.cat
		db.catMu.Unlock()
		return cat
	}
	db.catMu.Unlock()
	cat := catalogue.Build(snap, catalogue.Config{H: db.opts.CatalogueH, Z: db.opts.CatalogueZ, Seed: db.opts.Seed})
	db.catMu.Lock()
	if db.cat == nil || snap.Epoch() >= db.catEpoch {
		db.cat, db.catEpoch = cat, snap.Epoch()
	}
	db.catMu.Unlock()
	return cat
}

// NewFromEdgeList builds a DB from the textual edge-list format of
// internal/graph (a superset of SNAP's: optional "v id label" lines and an
// optional third edge-label column).
func NewFromEdgeList(r io.Reader, opts *Options) (*DB, error) {
	g, err := graph.LoadEdgeList(r)
	if err != nil {
		return nil, err
	}
	return newDB(g, opts.withDefaults())
}

// NewFromDataset builds a DB over one of the built-in synthetic datasets
// mirroring the paper's Table 8: "Amazon", "Epinions", "LiveJournal",
// "Twitter", "BerkStan", "Google" or "Human". scale multiplies the default
// size.
func NewFromDataset(name string, scale int, opts *Options) (*DB, error) {
	g := datagen.ByName(name, scale)
	if g == nil {
		return nil, fmt.Errorf("graphflow: unknown dataset %q (have %v)", name, datagen.Names())
	}
	return newDB(g, opts.withDefaults())
}

// Builder accumulates a graph edge by edge before opening a DB.
type Builder struct {
	b *graph.Builder
}

// NewBuilder starts a graph with numVertices vertices (labelled 0).
func NewBuilder(numVertices int) *Builder {
	return &Builder{b: graph.NewBuilder(numVertices)}
}

// AddVertex appends a labelled vertex and returns its ID.
func (b *Builder) AddVertex(label uint16) uint32 {
	return uint32(b.b.AddVertex(graph.Label(label)))
}

// SetVertexLabel labels an existing vertex.
func (b *Builder) SetVertexLabel(v uint32, label uint16) {
	b.b.SetVertexLabel(graph.VertexID(v), graph.Label(label))
}

// AddEdge records a directed labelled edge.
func (b *Builder) AddEdge(src, dst uint32, label uint16) {
	b.b.AddEdge(graph.VertexID(src), graph.VertexID(dst), graph.Label(label))
}

// Open freezes the graph and builds the DB.
func (b *Builder) Open(opts *Options) (*DB, error) {
	o := opts.withDefaults()
	// Build the hub index once, at the configured threshold, instead of
	// indexing at the default and re-indexing in newDB.
	b.b.SetHubThreshold(o.HubDegreeThreshold)
	g, err := b.b.Build()
	if err != nil {
		return nil, err
	}
	return newDB(g, o)
}

// NumVertices returns the live epoch's vertex count (post-mutation).
func (db *DB) NumVertices() int { return db.store.Snapshot().NumVertices() }

// NumEdges returns the live epoch's edge count (post-mutation).
func (db *DB) NumEdges() int { return db.store.Snapshot().NumEdges() }

// preparedPlan is the shareable, immutable compiled artifact cached per
// (canonical query form, epoch): the canonical query, its optimized
// plan, the plan lowered into an executable CompiledPlan, and the epoch
// snapshot it was compiled against. The plan is built over the canonical
// query, so one cached entry serves every isomorphic spelling of a
// pattern; per-spelling state (the original vertex names) lives in
// PreparedQuery instead. Holding the snapshot pins the epoch the
// compiled plan reads, which is what gives running queries snapshot
// isolation across concurrent mutations.
type preparedPlan struct {
	canon    *query.Graph
	plan     *plan.Plan
	compiled *exec.CompiledPlan
	snap     *live.Snapshot
}

// preparedFor returns the compiled plan for q at the current epoch (from
// the cache when possible) plus perm, mapping q's vertex indices to
// canonical indices.
func (db *DB) preparedFor(q *query.Graph, wcoOnly, skipCache bool) (*preparedPlan, []int, error) {
	canon, perm := q.Canonical()
	snap := db.store.Snapshot()
	var key string
	if db.plans != nil && !skipCache {
		// Versioning the key by epoch makes every mutation batch an
		// implicit cache-wide invalidation: post-mutation lookups miss and
		// re-plan against the new epoch's statistics, while entries for
		// still-running old-epoch queries stay resolvable until evicted.
		key = canon.Key() + "|e" + strconv.FormatUint(snap.Epoch(), 10)
		if wcoOnly {
			// WCO-restricted planning yields different plans; keep the
			// spaces apart in the cache.
			key += "|wco"
		}
		if pp, ok := db.plans.Get(key); ok {
			return pp, perm, nil
		}
	}
	p, err := optimizer.Optimize(canon, optimizer.Options{
		Catalogue:    db.catalogueFor(snap),
		W1:           db.w1,
		W2:           db.w2,
		WCOOnly:      wcoOnly,
		HubThreshold: db.opts.HubDegreeThreshold,
		// Plans are cached per canonical query and shared across runs with
		// factorization on or off, so pricing assumes the default (on):
		// star-suffix set reuse is what the batch engine actually executes.
		Factorized: true,
	})
	if err != nil {
		return nil, nil, err
	}
	cp, err := exec.Compile(snap, p)
	if err != nil {
		return nil, nil, err
	}
	pp := &preparedPlan{canon: canon, plan: p, compiled: cp, snap: snap}
	// Re-check the epoch before publishing to the cache: if a mutation (or
	// compaction) landed while we were planning, the epoch hook's Clear has
	// already run and this entry's key could never be looked up again — a
	// Put now would just pin snap's whole base CSR until the next Clear.
	if key != "" && db.store.Epoch() == snap.Epoch() {
		db.plans.Put(key, pp)
	}
	return pp, perm, nil
}

// PlanCacheStats reports the DB's compiled-plan cache effectiveness; all
// zeros when caching is disabled.
func (db *DB) PlanCacheStats() PlanCacheStats {
	if db.plans == nil {
		return PlanCacheStats{}
	}
	st := db.plans.Stats()
	return PlanCacheStats{Hits: st.Hits, Misses: st.Misses, Evictions: st.Evictions, Entries: st.Entries}
}

// PreparedQuery is a pattern compiled once — parsed, canonicalized,
// optimized and lowered — and runnable many times. All methods are safe
// for concurrent use from multiple goroutines: the compiled plan is
// immutable and every run carries its own mutable state.
//
// A PreparedQuery tracks the DB's epoch: each run starts from the
// current epoch's snapshot, transparently re-planning (through the plan
// cache) when mutations or compaction have bumped the epoch since the
// last run. A run in flight keeps the snapshot it started on, so it
// never observes a mutation applied after it began.
type PreparedQuery struct {
	db      *DB
	q       *query.Graph
	wcoOnly bool
	// skipCache preserves QueryOptions.SkipPlanCache across epoch
	// re-plans for ad-hoc queries measuring planning overhead.
	skipCache bool
	// names maps canonical vertex index to the pattern's original vertex
	// name, for Match output. The canonical form depends only on the
	// pattern, so names stay valid across epoch re-plans.
	names []string
	// cur is the most recently resolved plan; stale entries are replaced
	// on first use after an epoch bump.
	cur atomic.Pointer[preparedPlan]
}

// resolve returns the plan for the current epoch, re-planning if the
// cached one is stale.
func (pq *PreparedQuery) resolve() (*preparedPlan, error) {
	pp := pq.cur.Load()
	if pp != nil && pp.snap.Epoch() == pq.db.store.Epoch() {
		return pp, nil
	}
	pp, _, err := pq.db.preparedFor(pq.q, pq.wcoOnly, pq.skipCache)
	if err != nil {
		return nil, err
	}
	pq.cur.Store(pp)
	return pp, nil
}

// Prepare compiles the pattern for repeated execution. Planning uses the
// full WCO/binary/hybrid plan space; per-run knobs (Workers, Limit,
// Distinct, DisableCache, Adaptive) are supplied to each Count/Match
// call. The compiled plan is shared with the DB's plan cache, so ad-hoc
// Count calls with an isomorphic pattern reuse it too.
func (db *DB) Prepare(pattern string) (*PreparedQuery, error) {
	return db.prepare(pattern, false, false)
}

// PrepareWCO is Prepare with planning restricted to worst-case-optimal
// plans (QueryOptions.WCOOnly fixed at compile time).
func (db *DB) PrepareWCO(pattern string) (*PreparedQuery, error) {
	return db.prepare(pattern, true, false)
}

// prepare is the single parse → canonicalize → plan → compile path every
// query entry point goes through.
func (db *DB) prepare(pattern string, wcoOnly, skipCache bool) (*PreparedQuery, error) {
	q, err := query.ParseAny(pattern)
	if err != nil {
		return nil, err
	}
	pp, perm, err := db.preparedFor(q, wcoOnly, skipCache)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(q.Vertices))
	for orig, canon := range perm {
		names[canon] = q.Vertices[orig].Name
	}
	pq := &PreparedQuery{db: db, q: q, wcoOnly: wcoOnly, skipCache: skipCache, names: names}
	pq.cur.Store(pp)
	return pq, nil
}

// Count evaluates the prepared query and returns the number of matches.
// opts may be nil. Safe for concurrent use.
func (pq *PreparedQuery) Count(opts *QueryOptions) (int64, error) {
	n, _, err := pq.CountStats(opts)
	return n, err
}

// CountStats is Count plus the execution statistics and plan description.
// On context cancellation the partial count and statistics observed so
// far are returned alongside the error.
func (pq *PreparedQuery) CountStats(opts *QueryOptions) (int64, Stats, error) {
	var qo QueryOptions
	if opts != nil {
		qo = *opts
	}
	pp, err := pq.resolve()
	if err != nil {
		return 0, Stats{}, err
	}
	n, prof, err := pq.db.runCount(pp, qo)
	return n, statsFrom(pp.plan, prof, n), err
}

// Match evaluates the prepared query, invoking fn with each match as a
// map from vertex name to data vertex ID; fn returning false stops
// enumeration promptly. Distinct and Limit apply as in Count. Workers
// parallelises enumeration — fn is always serialised (never called
// concurrently) and a Limit is still honored exactly, but match order is
// nondeterministic across runs when Workers > 1.
func (pq *PreparedQuery) Match(fn func(map[string]uint32) bool, opts *QueryOptions) error {
	var qo QueryOptions
	if opts != nil {
		qo = *opts
	}
	pp, err := pq.resolve()
	if err != nil {
		return err
	}
	layout := pp.plan.Root.Out()
	names := make([]string, len(layout))
	for slot, v := range layout {
		names[slot] = pq.names[v]
	}
	cfg := qo.execConfig()
	mem := pq.db.memBudget(&qo)
	defer mem.Close()
	cfg.MemBudget = mem
	// delivered needs no synchronisation: RunUntil serialises emit.
	var delivered int64
	_, err = pp.compiled.RunUntilCtx(qo.context(), cfg, func(t []graph.VertexID) bool {
		if qo.Distinct && !allDistinct(t) {
			return true
		}
		m := make(map[string]uint32, len(t))
		for slot, v := range t {
			m[names[slot]] = uint32(v)
		}
		if !fn(m) {
			return false
		}
		delivered++
		return qo.Limit <= 0 || delivered < qo.Limit
	})
	return err
}

// CountCtx is Count bounded by ctx: evaluation stops promptly once ctx
// is cancelled or its deadline passes, returning ctx's error. Equivalent
// to setting QueryOptions.Context.
func (pq *PreparedQuery) CountCtx(ctx context.Context, opts *QueryOptions) (int64, error) {
	return pq.Count(withContext(ctx, opts))
}

// MatchCtx is Match bounded by ctx (see CountCtx).
func (pq *PreparedQuery) MatchCtx(ctx context.Context, fn func(map[string]uint32) bool, opts *QueryOptions) error {
	return pq.Match(fn, withContext(ctx, opts))
}

// Stats returns the prepared plan's kind and operator tree without
// running it (the Explain view). It reflects the most recently resolved
// epoch; a pending re-plan is not forced.
func (pq *PreparedQuery) Stats() Stats {
	pp := pq.cur.Load()
	return Stats{PlanKind: pp.plan.Kind(), Plan: pp.plan.Describe()}
}

// PlanDigest returns a short stable identifier of the prepared plan:
// a 64-bit FNV-1a hash over the canonical query form and the plan's
// operator tree, hex-encoded. Two queries share a digest exactly when
// they canonicalize to the same pattern and received the same plan, so
// slow-query log lines can be grouped by plan across processes.
func (pq *PreparedQuery) PlanDigest() string {
	pp := pq.cur.Load()
	h := fnv.New64a()
	io.WriteString(h, pp.canon.Key())
	io.WriteString(h, "|")
	io.WriteString(h, pp.plan.Describe())
	return strconv.FormatUint(h.Sum64(), 16)
}

// PlanKind returns the prepared plan's kind ("wco", "bj" or "hybrid")
// without rendering the operator tree — cheap enough for per-request
// serving paths. Like Stats, it reflects the most recently resolved
// epoch.
func (pq *PreparedQuery) PlanKind() string { return pq.cur.Load().plan.Kind() }

// execConfig maps the per-query knobs onto the executor's RunConfig:
// the vectorized engine by default, the tuple-at-a-time oracle when
// BatchSize is negative.
func (qo *QueryOptions) execConfig() exec.RunConfig {
	cfg := exec.RunConfig{Workers: qo.Workers, DisableCache: qo.DisableCache, Faults: qo.Faults}
	if qo.BatchSize < 0 {
		cfg.TupleAtATime = true
	} else {
		cfg.BatchSize = qo.BatchSize
		// Factorized execution is the default; Distinct needs every tuple
		// enumerated for its post-filter, so it opts out wholesale (the
		// safe fallback), as does the oracle engine above.
		cfg.Factorized = !qo.DisableFactorization && !qo.Distinct
	}
	return cfg
}

// memBudget mints the memory budget of one evaluation: the tighter of
// the DB-wide default and the query's own ceiling, drawing on the
// process governor. Nil — no metering at all — when neither a per-query
// nor a global ceiling is configured. The caller owns the budget and
// must Close it to return the reservation to the governor.
func (db *DB) memBudget(qo *QueryOptions) *resource.Budget {
	limit := db.opts.MemBudgetBytes
	if qo.MemBudgetBytes > 0 && (limit <= 0 || qo.MemBudgetBytes < limit) {
		limit = qo.MemBudgetBytes
	}
	if limit <= 0 && db.gov.Limit() <= 0 {
		return nil
	}
	return resource.NewBudget(limit, db.gov)
}

// runCount executes a compiled plan under the given options.
func (db *DB) runCount(pp *preparedPlan, qo QueryOptions) (int64, exec.Profile, error) {
	ctx := qo.context()
	cfg := qo.execConfig()
	mem := db.memBudget(&qo)
	defer mem.Close()
	cfg.MemBudget = mem
	switch {
	case qo.Distinct:
		if qo.Limit > 0 {
			// RunUntil serialises emit, so the counter needs no atomics and
			// the limit is exact.
			var count int64
			prof, err := pp.compiled.RunUntilCtx(ctx, cfg, func(t []graph.VertexID) bool {
				if !allDistinct(t) {
					return true
				}
				count++
				return count < qo.Limit
			})
			return count, prof, err
		}
		// RunConcurrent calls emit from every worker goroutine without
		// serialising, so the count must be an atomic.
		var count atomic.Int64
		prof, err := pp.compiled.RunConcurrentCtx(ctx, cfg, func(t []graph.VertexID) {
			if allDistinct(t) {
				count.Add(1)
			}
		})
		return count.Load(), prof, err
	case qo.Adaptive:
		// The adaptive evaluator reads the same epoch snapshot the plan was
		// compiled against, with that epoch's catalogue.
		ev := &adaptive.Evaluator{
			Graph:     pp.snap,
			Catalogue: db.catalogueFor(pp.snap),
			Config: adaptive.Config{
				Workers:      qo.Workers,
				HubThreshold: db.opts.HubDegreeThreshold,
				BatchSize:    qo.BatchSize,
				MemBudget:    mem,
				Faults:       qo.Faults,
			},
		}
		if qo.Limit > 0 {
			// The adaptive evaluator has no native early stop; reaching the
			// limit cancels a child context, which its amortized polling
			// already honors. The self-inflicted Canceled is success —
			// cancellation from the caller's own ctx still propagates.
			lctx, stop := context.WithCancel(ctx)
			defer stop()
			var count int64
			prof, err := ev.RunCtx(lctx, pp.plan, func([]graph.VertexID) {
				if count < qo.Limit {
					count++
					if count == qo.Limit {
						stop()
					}
				}
			})
			if err != nil && !(errors.Is(err, context.Canceled) && ctx.Err() == nil) {
				return count, prof, err
			}
			return count, prof, nil
		}
		return ev.CountCtx(ctx, pp.plan)
	case qo.Limit > 0:
		return pp.compiled.CountUpToCtx(ctx, cfg, qo.Limit)
	default:
		// Pure counting can skip enumerating the last extension's Cartesian
		// product (factorized counting); the count is exact.
		cfg.FastCount = true
		return pp.compiled.CountCtx(ctx, cfg)
	}
}

// context returns the evaluation-bounding context (Background when the
// caller supplied none).
func (qo *QueryOptions) context() context.Context {
	if qo.Context != nil {
		return qo.Context
	}
	return context.Background()
}

// withContext copies opts (nil allowed) and installs ctx as the
// evaluation-bounding context.
func withContext(ctx context.Context, opts *QueryOptions) *QueryOptions {
	var qo QueryOptions
	if opts != nil {
		qo = *opts
	}
	qo.Context = ctx
	return &qo
}

// Count evaluates the pattern and returns the number of matches. opts may
// be nil. Repeated calls with isomorphic patterns hit the plan cache and
// skip re-optimization.
func (db *DB) Count(pattern string, opts *QueryOptions) (int64, error) {
	n, _, err := db.CountStats(pattern, opts)
	return n, err
}

// CountCtx is Count bounded by ctx: evaluation stops promptly once ctx
// is cancelled or its deadline passes, returning ctx's error. Equivalent
// to setting QueryOptions.Context.
func (db *DB) CountCtx(ctx context.Context, pattern string, opts *QueryOptions) (int64, error) {
	return db.Count(pattern, withContext(ctx, opts))
}

// CountStats is Count plus the execution statistics and plan description.
// On context cancellation the partial count and statistics observed so
// far are returned alongside the error.
func (db *DB) CountStats(pattern string, opts *QueryOptions) (int64, Stats, error) {
	var qo QueryOptions
	if opts != nil {
		qo = *opts
	}
	pq, err := db.prepare(pattern, qo.WCOOnly, qo.SkipPlanCache)
	if err != nil {
		return 0, Stats{}, err
	}
	pp := pq.cur.Load()
	n, prof, err := db.runCount(pp, qo)
	return n, statsFrom(pp.plan, prof, n), err
}

// allDistinct reports whether the tuple binds pairwise-distinct data
// vertices (tuples are short: quadratic scan beats allocation).
func allDistinct(t []graph.VertexID) bool {
	for i := 1; i < len(t); i++ {
		for j := 0; j < i; j++ {
			if t[i] == t[j] {
				return false
			}
		}
	}
	return true
}

// Match evaluates the pattern, invoking fn with each match as a map from
// vertex name to data vertex ID; fn returning false stops enumeration
// promptly (the runner halts rather than draining the full result set).
// Distinct, Limit and Workers apply as in PreparedQuery.Match.
func (db *DB) Match(pattern string, fn func(map[string]uint32) bool, opts *QueryOptions) error {
	var qo QueryOptions
	if opts != nil {
		qo = *opts
	}
	pq, err := db.prepare(pattern, qo.WCOOnly, qo.SkipPlanCache)
	if err != nil {
		return err
	}
	return pq.Match(fn, opts)
}

// MatchCtx is Match bounded by ctx (see CountCtx).
func (db *DB) MatchCtx(ctx context.Context, pattern string, fn func(map[string]uint32) bool, opts *QueryOptions) error {
	return db.Match(pattern, fn, withContext(ctx, opts))
}

// Explain returns the optimizer's plan for the pattern without running it.
func (db *DB) Explain(pattern string) (Stats, error) {
	pq, err := db.prepare(pattern, false, false)
	if err != nil {
		return Stats{}, err
	}
	return pq.Stats(), nil
}

// Analyze runs the pattern and returns Stats whose Plan field carries the
// per-operator breakdown (tuples out, i-cost, cache hits, probe and build
// counts, attributed wall time) — EXPLAIN ANALYZE for subgraph plans.
// Single-threaded.
func (db *DB) Analyze(pattern string) (Stats, error) {
	return db.AnalyzeCtx(context.Background(), pattern)
}

// AnalyzeCtx is Analyze under a context: the analysis run honors
// cancellation and deadlines, so servers can bound EXPLAIN ANALYZE by
// their request timeout.
func (db *DB) AnalyzeCtx(ctx context.Context, pattern string) (Stats, error) {
	pq, err := db.prepare(pattern, false, false)
	if err != nil {
		return Stats{}, err
	}
	pp := pq.cur.Load()
	ops, prof, err := pp.compiled.AnalyzeCtx(ctx, exec.RunConfig{})
	if err != nil {
		return Stats{}, err
	}
	st := statsFrom(pp.plan, prof, prof.Matches)
	st.Plan = ops.Describe()
	return st, nil
}

// EstimateCardinality returns the catalogue's estimate of the pattern's
// match count (Section 5.2).
func (db *DB) EstimateCardinality(pattern string) (float64, error) {
	q, err := query.ParseAny(pattern)
	if err != nil {
		return 0, err
	}
	return db.catalogueFor(db.store.Snapshot()).EstimateCardinality(q), nil
}

// GraphStats summarises the stored graph (degree skew and clustering — the
// structural knobs that drive plan choice in the paper). It reflects the
// live epoch, mutations included.
func (db *DB) GraphStats() graph.Stats {
	return graph.ComputeStatsOf(db.store.Snapshot(), 2000, rand.New(rand.NewSource(7)))
}

// EdgeOp names one directed labelled edge in a mutation Batch.
type EdgeOp struct {
	Src, Dst uint32
	Label    uint16
}

// Batch is one atomic group of live mutations. Vertices are appended
// first, so AddEdges/DeleteEdges may reference vertices created by the
// same batch.
type Batch struct {
	// AddVertices appends one vertex per label; IDs are assigned
	// sequentially from the current vertex count.
	AddVertices []uint16
	AddEdges    []EdgeOp
	DeleteEdges []EdgeOp
}

// ApplyResult reports what one mutation batch did.
type ApplyResult struct {
	// Epoch is the graph version the batch produced; queries started
	// afterwards observe it, queries already running do not.
	Epoch uint64
	// FirstNewVertex is the ID of the first appended vertex (meaningful
	// only when AddedVertices > 0; subsequent IDs are consecutive).
	FirstNewVertex uint32
	AddedVertices  int
	// AddedEdges counts edges actually inserted: duplicates and
	// self-loops are dropped, matching Builder semantics.
	AddedEdges int
	// DeletedEdges counts edges actually removed; deleting an absent edge
	// is a no-op.
	DeletedEdges int
	// Vertices and Edges are the post-batch live counts, read atomically
	// with Epoch so the triple is self-consistent under concurrent
	// writers.
	Vertices, Edges int
}

// Apply runs one mutation batch atomically against the live store:
// either the whole batch becomes a single new epoch, or (on validation
// error) nothing changes. In-flight queries keep the snapshot they
// started on; subsequent queries re-plan against the new epoch's
// statistics. The background compactor folds the delta overlay into a
// fresh CSR base once it outgrows Options.CompactThreshold.
func (db *DB) Apply(b Batch) (ApplyResult, error) {
	lb := live.Batch{
		AddEdges:    make([]live.EdgeOp, len(b.AddEdges)),
		DeleteEdges: make([]live.EdgeOp, len(b.DeleteEdges)),
	}
	for _, l := range b.AddVertices {
		lb.AddVertices = append(lb.AddVertices, graph.Label(l))
	}
	for i, e := range b.AddEdges {
		lb.AddEdges[i] = live.EdgeOp{Src: graph.VertexID(e.Src), Dst: graph.VertexID(e.Dst), Label: graph.Label(e.Label)}
	}
	for i, e := range b.DeleteEdges {
		lb.DeleteEdges[i] = live.EdgeOp{Src: graph.VertexID(e.Src), Dst: graph.VertexID(e.Dst), Label: graph.Label(e.Label)}
	}
	res, err := db.store.Apply(lb)
	if err != nil {
		return ApplyResult{}, err
	}
	return ApplyResult{
		Epoch:          res.Epoch,
		FirstNewVertex: uint32(res.FirstNewVertex),
		AddedVertices:  res.AddedVertices,
		AddedEdges:     res.AddedEdges,
		DeletedEdges:   res.DeletedEdges,
		Vertices:       res.Vertices,
		Edges:          res.Edges,
	}, nil
}

// AddVertex appends a labelled vertex to the live graph and returns its ID.
func (db *DB) AddVertex(label uint16) (uint32, error) {
	v, err := db.store.AddVertex(graph.Label(label))
	return uint32(v), err
}

// AddEdge inserts a directed labelled edge into the live graph. It
// reports whether the edge was new (false: duplicate or self-loop, both
// dropped to preserve Builder semantics).
//
// Each call publishes its own epoch, which pays one copy-on-write clone
// of the overlay's vertex index; for bulk mutation streams prefer
// Apply, which amortizes that clone (and the plan-cache invalidation)
// across the whole batch.
func (db *DB) AddEdge(src, dst uint32, label uint16) (bool, error) {
	return db.store.AddEdge(graph.VertexID(src), graph.VertexID(dst), graph.Label(label))
}

// DeleteEdge removes the directed edge src->dst with the given (exact)
// label from the live graph, reporting whether it existed.
func (db *DB) DeleteEdge(src, dst uint32, label uint16) (bool, error) {
	return db.store.DeleteEdge(graph.VertexID(src), graph.VertexID(dst), graph.Label(label))
}

// Epoch returns the live graph's current version; it advances by one per
// applied mutation batch and per compaction.
func (db *DB) Epoch() uint64 { return db.store.Epoch() }

// Compact synchronously folds the delta overlay into a fresh CSR base
// and bumps the epoch (a no-op on an empty overlay). Automatic
// background compaction triggers on Options.CompactThreshold; this entry
// point forces a pass, e.g. before a read-heavy phase.
func (db *DB) Compact() error { return db.store.Compact() }

// WaitCompaction blocks until any in-flight background compaction pass
// finishes. Useful in tests and before shutdown.
func (db *DB) WaitCompaction() { db.store.WaitCompaction() }

// LiveStats is a snapshot of the versioned store's state.
type LiveStats struct {
	// Epoch is the current graph version.
	Epoch uint64
	// Vertices and Edges are the live (post-mutation) counts.
	Vertices, Edges int
	// BaseEdges is the edge count of the immutable CSR under the overlay.
	BaseEdges int
	// DeltaOps is the number of overlay mutations since the last
	// compaction — the metric the compaction trigger watches.
	DeltaOps int
	// Compactions counts completed compaction passes.
	Compactions int64
	// HubThreshold is the effective hub-index partition-size floor of the
	// current base CSR (negative when bitset indexing is disabled).
	HubThreshold int
	// HubPartitions is the number of bitset-indexed adjacency partitions
	// in the current base CSR (overlay vertices are unindexed until the
	// next compaction).
	HubPartitions int
	// BitsetIndexBytes is the memory held by the hub bitset indexes.
	BitsetIndexBytes int64
	// WALEnabled reports whether the store is durable (Options.DataDir
	// set); the remaining WAL fields are zero when it is false.
	WALEnabled bool
	// WALBytes is the current write-ahead log size across segments;
	// WALBatches counts mutation batches logged by this process.
	WALBytes   int64
	WALBatches int64
	// ReplayedBatches is the number of WAL records replayed at open, and
	// WALTornTail whether a torn final record was discarded then.
	ReplayedBatches int
	WALTornTail     bool
	// CheckpointEpoch is the newest durable checkpoint's epoch (0 until
	// the first compaction-triggered checkpoint lands); Checkpoints counts
	// checkpoints written by this process.
	CheckpointEpoch uint64
	Checkpoints     int64
}

// LiveStats reports the versioned store's current state.
func (db *DB) LiveStats() LiveStats {
	s := db.store.Snapshot()
	hub := s.Base().HubIndexStats()
	ws := db.store.WALStats()
	return LiveStats{
		Epoch:            s.Epoch(),
		Vertices:         s.NumVertices(),
		Edges:            s.NumEdges(),
		BaseEdges:        s.Base().NumEdges(),
		DeltaOps:         s.DeltaOps(),
		Compactions:      db.store.Compactions(),
		HubThreshold:     hub.Threshold,
		HubPartitions:    hub.Partitions,
		BitsetIndexBytes: hub.Bytes,
		WALEnabled:       ws.Enabled,
		WALBytes:         ws.Bytes,
		WALBatches:       ws.Appended,
		ReplayedBatches:  ws.Replayed,
		WALTornTail:      ws.TornTailDropped,
		CheckpointEpoch:  ws.CheckpointEpoch,
		Checkpoints:      ws.Checkpoints,
	}
}

// RegisterMetrics exposes the DB's internals — live-store gauges, plan
// cache counters, WAL state including fsync latency, and compaction
// durations — in a metrics registry under the graphflow_* namespace.
// Call at most once per (DB, registry) pair; the gauges read live state
// at scrape time, so registration costs nothing between scrapes.
func (db *DB) RegisterMetrics(reg *metrics.Registry) {
	reg.GaugeFunc("graphflow_graph_vertices", "Live vertex count at the current epoch.",
		func() float64 { return float64(db.store.Snapshot().NumVertices()) })
	reg.GaugeFunc("graphflow_graph_edges", "Live edge count at the current epoch.",
		func() float64 { return float64(db.store.Snapshot().NumEdges()) })
	reg.GaugeFunc("graphflow_graph_epoch", "Current graph version.",
		func() float64 { return float64(db.store.Epoch()) })
	reg.GaugeFunc("graphflow_overlay_delta_ops", "Overlay mutations since the last compaction (the compaction trigger's metric).",
		func() float64 { return float64(db.store.Snapshot().DeltaOps()) })
	reg.CounterFunc("graphflow_compactions_total", "Completed compaction passes.",
		func() float64 { return float64(db.store.Compactions()) })
	reg.RegisterHistogram("graphflow_compaction_seconds", "Compaction pass duration (rebuild through publish, checkpoint included).",
		db.store.CompactionHistogram())

	reg.CounterFunc("graphflow_plan_cache_hits_total", "Plan cache hits.",
		func() float64 { return float64(db.PlanCacheStats().Hits) })
	reg.CounterFunc("graphflow_plan_cache_misses_total", "Plan cache misses.",
		func() float64 { return float64(db.PlanCacheStats().Misses) })
	reg.CounterFunc("graphflow_plan_cache_evictions_total", "Plans evicted to respect the cache size bound.",
		func() float64 { return float64(db.PlanCacheStats().Evictions) })

	reg.GaugeFunc("graphflow_mem_reserved_bytes", "Bytes currently reserved from the memory governor by in-flight queries.",
		func() float64 { return float64(db.gov.InUse()) })
	reg.GaugeFunc("graphflow_mem_limit_bytes", "Process-wide query-memory ceiling (0 = unlimited).",
		func() float64 { return float64(db.gov.Limit()) })
	reg.GaugeFunc("graphflow_plan_cache_entries", "Currently cached plans.",
		func() float64 { return float64(db.PlanCacheStats().Entries) })

	reg.GaugeFunc("graphflow_wal_enabled", "1 when the store is durable (DataDir set), else 0.",
		func() float64 {
			if db.store.WALStats().Enabled {
				return 1
			}
			return 0
		})
	reg.GaugeFunc("graphflow_wal_segment_bytes", "Write-ahead log size across live segments.",
		func() float64 { return float64(db.store.WALStats().Bytes) })
	reg.CounterFunc("graphflow_wal_batches_total", "Mutation batches appended to the WAL by this process.",
		func() float64 { return float64(db.store.WALStats().Appended) })
	reg.GaugeFunc("graphflow_wal_checkpoint_epoch", "Epoch covered by the newest durable checkpoint (0 = boot-time base).",
		func() float64 { return float64(db.store.WALStats().CheckpointEpoch) })
	reg.CounterFunc("graphflow_wal_checkpoints_total", "Checkpoints written by this process.",
		func() float64 { return float64(db.store.WALStats().Checkpoints) })
	reg.GaugeFunc("graphflow_wal_checkpoint_age_seconds", "Seconds since the newest durable checkpoint was written (0 until one exists).",
		func() float64 {
			t, ok := db.store.CheckpointTime()
			if !ok {
				return 0
			}
			return time.Since(t).Seconds()
		})
	if h := db.store.FsyncHistogram(); h != nil {
		reg.RegisterHistogram("graphflow_wal_fsync_seconds", "WAL fsync latency (per-append, interval and rotation syncs).", h)
	}
}

func statsFrom(p *plan.Plan, prof exec.Profile, n int64) Stats {
	return Stats{
		Matches:              n,
		Intermediate:         prof.Intermediate,
		ICost:                prof.ICost,
		CacheHits:            prof.CacheHits,
		KernelMerge:          prof.Kernels.Merge,
		KernelGallop:         prof.Kernels.Gallop,
		KernelBitsetProbe:    prof.Kernels.BitsetProbe,
		KernelBitsetAnd:      prof.Kernels.BitsetAnd,
		ScanBatches:          prof.Batches.Scan,
		ExtendBatches:        prof.Batches.Extend,
		ProbeBatches:         prof.Batches.Probe,
		FactorizedPrefixes:   prof.FactorizedPrefixes,
		FactorizedAvoided:    prof.FactorizedAvoided,
		StageScanNanos:       prof.Stages.Scan,
		StageExtendNanos:     prof.Stages.Extend,
		StageProbeNanos:      prof.Stages.Probe,
		StageFactorizedNanos: prof.Stages.Factorized,
		StageBuildNanos:      prof.Stages.Build,
		StageEmitNanos:       prof.Stages.Emit,
		PlanKind:             p.Kind(),
		Plan:                 p.Describe(),
	}
}
