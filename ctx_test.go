package graphflow

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// denseDB builds a DB over a dense random graph on which clique queries
// run long enough for mid-run cancellation to be observable.
func denseDB(t testing.TB) *DB {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	const n, deg = 2000, 60
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		for d := 0; d < deg; d++ {
			b.AddEdge(uint32(v), uint32(rng.Intn(n)), 0)
		}
	}
	db, err := b.Open(&Options{CatalogueZ: 100})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// wcoHeavy is a 4-clique: the optimizer evaluates it with multiway
// intersections, the workload the cancellation check must interrupt.
const wcoHeavy = "a->b, a->c, a->d, b->c, b->d, c->d"

// TestCountCtxCancelsWCOQueryPromptly is the acceptance test for the
// ctx-aware public API: a Count on a WCO-heavy query must return
// context.DeadlineExceeded promptly when its context expires mid-run.
func TestCountCtxCancelsWCOQueryPromptly(t *testing.T) {
	db := denseDB(t)

	full := time.Now()
	n, err := db.Count(wcoHeavy, &QueryOptions{WCOOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	fullDur := time.Since(full)
	if fullDur < 100*time.Millisecond {
		t.Skipf("full count of %d matches took only %v; too fast to observe mid-run cancellation", n, fullDur)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = db.CountCtx(ctx, wcoHeavy, &QueryOptions{WCOOnly: true})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > fullDur/2 && elapsed > 500*time.Millisecond {
		t.Errorf("cancellation latency %v (full run %v): not bounded", elapsed, fullDur)
	}
}

func TestCtxEntryPointsPropagateCancellation(t *testing.T) {
	db := denseDB(t)
	cancelled, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := db.CountCtx(cancelled, wcoHeavy, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("DB.CountCtx err = %v, want context.Canceled", err)
	}
	if err := db.MatchCtx(cancelled, wcoHeavy, func(map[string]uint32) bool { return true }, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("DB.MatchCtx err = %v, want context.Canceled", err)
	}
	pq, err := db.Prepare(wcoHeavy)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pq.CountCtx(cancelled, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("PreparedQuery.CountCtx err = %v, want context.Canceled", err)
	}
	if err := pq.MatchCtx(cancelled, func(map[string]uint32) bool { return true }, nil); !errors.Is(err, context.Canceled) {
		t.Errorf("PreparedQuery.MatchCtx err = %v, want context.Canceled", err)
	}

	// Every execution mode must propagate the context, not just the
	// factorized-count default path.
	for _, opts := range []*QueryOptions{
		{Distinct: true},
		{Adaptive: true},
		{Limit: 10},
		{Workers: 4},
	} {
		if _, err := db.CountCtx(cancelled, wcoHeavy, opts); !errors.Is(err, context.Canceled) {
			t.Errorf("CountCtx(%+v) err = %v, want context.Canceled", *opts, err)
		}
	}
}

func TestQueryOptionsContextField(t *testing.T) {
	db := denseDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.Count(wcoHeavy, &QueryOptions{Context: ctx}); !errors.Is(err, context.Canceled) {
		t.Errorf("Count with QueryOptions.Context err = %v, want context.Canceled", err)
	}
}

// TestParallelMatchHonorsLimit is the regression test for the old
// behaviour where any Limit silently forced sequential execution: a
// parallel Match with a row cap must deliver exactly Limit rows, each of
// which is a genuine match of the pattern.
func TestParallelMatchHonorsLimit(t *testing.T) {
	db, err := NewFromDataset("Epinions", 1, &Options{CatalogueZ: 200})
	if err != nil {
		t.Fatal(err)
	}
	const pattern = "a->b, b->c, a->c"

	// Reference: the full sequential result set.
	fullSet := map[string]bool{}
	err = db.Match(pattern, func(m map[string]uint32) bool {
		fullSet[fmt.Sprintf("%d-%d-%d", m["a"], m["b"], m["c"])] = true
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(len(fullSet))
	if total < 20 {
		t.Fatalf("fixture too small: %d triangles", total)
	}
	limit := total / 2

	for _, workers := range []int{1, 4} {
		var rows []string
		err := db.Match(pattern, func(m map[string]uint32) bool {
			rows = append(rows, fmt.Sprintf("%d-%d-%d", m["a"], m["b"], m["c"]))
			return true
		}, &QueryOptions{Workers: workers, Limit: limit})
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(rows)) != limit {
			t.Errorf("workers=%d: delivered %d rows, want %d", workers, len(rows), limit)
		}
		for _, r := range rows {
			if !fullSet[r] {
				t.Fatalf("workers=%d: row %s is not a match of the sequential reference", workers, r)
			}
		}
	}
}

// TestParallelCountHonorsLimit checks the Count side of the same fix:
// Limit with Workers > 1 no longer downgrades to one worker, and the
// returned count still equals the cap exactly.
func TestParallelCountHonorsLimit(t *testing.T) {
	db, err := NewFromDataset("Epinions", 1, &Options{CatalogueZ: 200})
	if err != nil {
		t.Fatal(err)
	}
	const pattern = "a->b, b->c, a->c"
	seq, err := db.Count(pattern, &QueryOptions{Limit: 50})
	if err != nil {
		t.Fatal(err)
	}
	par, err := db.Count(pattern, &QueryOptions{Limit: 50, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 50 || par != 50 {
		t.Errorf("limited counts: sequential = %d, parallel = %d, want 50", seq, par)
	}
}

// TestLimitComposesWithDistinctAndAdaptive: Limit must stop enumeration
// in every counting mode, not just the default path.
func TestLimitComposesWithDistinctAndAdaptive(t *testing.T) {
	db, err := NewFromDataset("Epinions", 1, &Options{CatalogueZ: 200})
	if err != nil {
		t.Fatal(err)
	}
	const pattern = "a->b, b->c, a->c"
	for _, opts := range []*QueryOptions{
		{Distinct: true, Limit: 25},
		{Distinct: true, Limit: 25, Workers: 4},
		{Adaptive: true, Limit: 25},
	} {
		n, st, err := db.CountStats(pattern, opts)
		if err != nil {
			t.Fatalf("Count(%+v): %v", *opts, err)
		}
		if n != 25 {
			t.Errorf("Count(%+v) = %d, want the limit 25", *opts, n)
		}
		// The profile of the capped run must survive (the adaptive path
		// stops itself via context cancellation internally).
		if st.Intermediate == 0 {
			t.Errorf("Count(%+v) reported an empty profile", *opts)
		}
	}
	// A limit above the total returns the exact full count.
	full, err := db.Count(pattern, &QueryOptions{Distinct: true})
	if err != nil {
		t.Fatal(err)
	}
	capped, err := db.Count(pattern, &QueryOptions{Distinct: true, Limit: full + 1000})
	if err != nil {
		t.Fatal(err)
	}
	if capped != full {
		t.Errorf("distinct with oversized limit = %d, want full count %d", capped, full)
	}
}
